//! A tiny self-describing binary codec for model checkpoints.
//!
//! The deployment story of the paper (train COM-AID offline, serve it
//! online inside DICE) needs durable model files; this module is the
//! byte-level substrate those checkpoints are built on. It is
//! deliberately minimal — little-endian fixed-width scalars,
//! length-prefixed sequences — so that the serving layer can wrap a
//! versioned, checksummed container around it (see `ncl-core`'s
//! `comaid::persist`) without pulling a serialisation framework into an
//! offline build.
//!
//! Decoding is *hostile-input safe*: every read is bounds-checked, every
//! length prefix is validated against the remaining buffer before any
//! allocation, and all failures surface as [`WireError`] — never a panic
//! or an OOM abort. This is what lets checkpoint corruption degrade into
//! a typed load error instead of taking down a serving process.

use crate::{Matrix, Vector};

/// Decode failure: the buffer does not describe a valid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Eof {
        /// Bytes needed by the read that failed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The bytes were readable but semantically invalid (bad enum tag,
    /// non-UTF-8 string, inconsistent dimensions, ...).
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Eof { needed, remaining } => write!(
                f,
                "unexpected end of buffer: needed {needed} bytes, {remaining} remaining"
            ),
            Self::Invalid(m) => write!(f, "invalid encoding: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked cursor over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Eof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a length prefix and validates that at least
    /// `len * min_elem_bytes` bytes remain, so corrupt prefixes can
    /// never trigger huge allocations.
    pub fn length(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = usize::decode(self)?;
        let need = len.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(WireError::Invalid(format!(
                "length prefix {len} exceeds remaining buffer ({} bytes)",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

/// Binary encode/decode for checkpointable values.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

macro_rules! impl_scalar_wire {
    ($t:ty) => {
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    };
}

impl_scalar_wire!(u8);
impl_scalar_wire!(u32);
impl_scalar_wire!(u64);
impl_scalar_wire!(f32);
impl_scalar_wire!(f64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError::Invalid(format!("usize overflow: {v}")))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Invalid(format!("bad bool byte {b}"))),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.length(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Invalid(format!("non-UTF-8 string: {e}")))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Every element encodes to at least one byte, which bounds the
        // allocation by the remaining buffer size.
        let len = r.length(1)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(WireError::Invalid(format!("bad Option tag {b}"))),
        }
    }
}

impl Wire for Vector {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for &x in self.as_slice() {
            x.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.length(4)?;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(f32::decode(r)?);
        }
        Ok(Vector::from_vec(data))
    }
}

impl Wire for Matrix {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows().encode(out);
        self.cols().encode(out);
        for &x in self.as_slice() {
            x.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let rows = usize::decode(r)?;
        let cols = usize::decode(r)?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| WireError::Invalid(format!("matrix shape overflow: {rows}x{cols}")))?;
        if n.saturating_mul(4) > r.remaining() {
            return Err(WireError::Invalid(format!(
                "matrix {rows}x{cols} exceeds remaining buffer ({} bytes)",
                r.remaining()
            )));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(f32::decode(r)?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

/// One entry of an `NCLMODEL` v2 offset table ([`SectionIndex`]): a
/// named byte range within the container's section region, plus its own
/// integrity checksum so a reader can verify exactly the sections it
/// touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section name (unique within an index).
    pub name: String,
    /// Byte offset of the section payload, relative to the start of the
    /// section region (the first byte after the encoded index).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// [`fnv1a64`] of the payload bytes.
    pub checksum: u64,
}

impl Wire for SectionEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.offset.encode(out);
        self.len.encode(out);
        self.checksum.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            name: String::decode(r)?,
            offset: u64::decode(r)?,
            len: u64::decode(r)?,
            checksum: u64::decode(r)?,
        })
    }
}

/// The offset table of an `NCLMODEL` v2 container: per-section byte
/// offsets, lengths, and checksums. A serving process reads *only* this
/// index at open time and fetches section payloads on demand — the
/// substrate for lazy per-shard freezing (`comaid::persist` in
/// `ncl-core` wraps it in the versioned, checksummed container).
///
/// Offsets handed out by [`SectionIndex::append`] are contiguous and
/// ascending; decode accepts any bounds-checked layout so readers stay
/// hostile-input safe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SectionIndex {
    /// The table entries, in the order the sections were appended.
    pub entries: Vec<SectionEntry>,
}

impl SectionIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `payload` as the next contiguous section and returns the
    /// offset it must be written at (relative to the section region).
    pub fn append(&mut self, name: &str, payload: &[u8]) -> u64 {
        let offset = self.entries.last().map(|e| e.offset + e.len).unwrap_or(0);
        self.entries.push(SectionEntry {
            name: name.to_string(),
            offset,
            len: payload.len() as u64,
            checksum: fnv1a64(payload),
        });
        offset
    }

    /// Looks up a section by name.
    pub fn find(&self, name: &str) -> Option<&SectionEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Total bytes of the section region the index describes (the
    /// furthest byte any entry reaches). Errors on offset + len
    /// overflow, so hostile length fields cannot wrap around.
    pub fn region_len(&self) -> Result<u64, WireError> {
        let mut end = 0u64;
        for e in &self.entries {
            let e_end = e.offset.checked_add(e.len).ok_or_else(|| {
                WireError::Invalid(format!(
                    "section '{}' offset {} + len {} overflows",
                    e.name, e.offset, e.len
                ))
            })?;
            end = end.max(e_end);
        }
        Ok(end)
    }

    /// Verifies and returns section `name`'s payload out of an in-memory
    /// section region (bounds-checked slice + checksum).
    pub fn slice<'a>(&self, name: &str, region: &'a [u8]) -> Result<&'a [u8], WireError> {
        let e = self
            .find(name)
            .ok_or_else(|| WireError::Invalid(format!("missing section '{name}'")))?;
        let start = usize::try_from(e.offset)
            .map_err(|_| WireError::Invalid(format!("section '{name}' offset overflow")))?;
        let len = usize::try_from(e.len)
            .map_err(|_| WireError::Invalid(format!("section '{name}' length overflow")))?;
        let end = start.checked_add(len).filter(|&end| end <= region.len());
        let Some(end) = end else {
            return Err(WireError::Eof {
                needed: start.saturating_add(len),
                remaining: region.len(),
            });
        };
        let bytes = &region[start..end];
        let computed = fnv1a64(bytes);
        if computed != e.checksum {
            return Err(WireError::Invalid(format!(
                "section '{name}' checksum mismatch (stored {:#018x}, computed {computed:#018x})",
                e.checksum
            )));
        }
        Ok(bytes)
    }
}

impl Wire for SectionIndex {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            entries: Vec::<SectionEntry>::decode(r)?,
        })
    }
}

/// FNV-1a 64-bit hash — the checkpoint container's integrity checksum.
/// Not cryptographic; it guards against truncation and bit rot, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert_eq!(r.remaining(), 0, "trailing bytes after decode");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(-1.5f32);
        round_trip(std::f64::consts::PI);
        round_trip(true);
        round_trip(String::from("chronic kidney disease — ❤"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<String>::None);
        round_trip(Some(vec![0.5f32, -0.25]));
        round_trip(Vector::from_vec(vec![1.0, 2.0, 3.0]));
        round_trip(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
    }

    #[test]
    fn truncated_buffer_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        Matrix::from_vec(8, 8, vec![0.25; 64]).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(Matrix::decode(&mut r).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn hostile_length_prefix_cannot_allocate() {
        // A Vec<f32> claiming u64::MAX elements in a 16-byte buffer.
        let mut buf = Vec::new();
        u64::MAX.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 8]);
        let mut r = Reader::new(&buf);
        let err = Vec::<f32>::decode(&mut r).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn bad_tags_are_invalid() {
        let mut r = Reader::new(&[7u8]);
        assert!(matches!(bool::decode(&mut r), Err(WireError::Invalid(_))));
        let mut r = Reader::new(&[9u8]);
        assert!(matches!(
            Option::<u8>::decode(&mut r),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn section_index_round_trips_and_slices() {
        let a = vec![1u8, 2, 3, 4, 5];
        let b = vec![9u8; 300];
        let mut idx = SectionIndex::new();
        assert_eq!(idx.append("alpha", &a), 0);
        assert_eq!(idx.append("beta", &b), 5);
        round_trip(idx.clone());

        let mut region = a.clone();
        region.extend_from_slice(&b);
        assert_eq!(idx.region_len().unwrap(), region.len() as u64);
        assert_eq!(idx.slice("alpha", &region).unwrap(), &a[..]);
        assert_eq!(idx.slice("beta", &region).unwrap(), &b[..]);
        assert!(matches!(
            idx.slice("gamma", &region),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn truncated_section_region_is_eof_not_panic() {
        let payload = vec![0xABu8; 64];
        let mut idx = SectionIndex::new();
        idx.append("w", &payload);
        // Cut the region anywhere mid-section: bounds-checked Eof.
        for cut in 0..payload.len() {
            let err = idx.slice("w", &payload[..cut]).unwrap_err();
            assert!(matches!(err, WireError::Eof { .. }), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn oversized_section_length_fields_are_rejected() {
        // Forged length beyond the region: Eof, never an allocation.
        let idx = SectionIndex {
            entries: vec![SectionEntry {
                name: "big".into(),
                offset: 0,
                len: u64::MAX - 7,
                checksum: 0,
            }],
        };
        assert!(idx.slice("big", &[0u8; 16]).is_err());
        // offset + len overflowing u64 is Invalid at region_len time.
        let idx = SectionIndex {
            entries: vec![SectionEntry {
                name: "wrap".into(),
                offset: u64::MAX - 3,
                len: 8,
                checksum: 0,
            }],
        };
        assert!(matches!(idx.region_len(), Err(WireError::Invalid(_))));
    }

    #[test]
    fn section_checksum_mismatch_is_detected() {
        let payload = vec![0x5Au8; 128];
        let mut idx = SectionIndex::new();
        idx.append("p", &payload);
        let mut bad = payload.clone();
        bad[77] ^= 0x01;
        let err = idx.slice("p", &bad).unwrap_err();
        assert!(
            matches!(&err, WireError::Invalid(m) if m.contains("checksum")),
            "{err:?}"
        );
    }

    #[test]
    fn multi_megabyte_tensor_round_trips() {
        // A ~4.6 MB matrix: exercises the length-validation paths at a
        // size where a wrong prefix would visibly over-allocate.
        let rows = 768;
        let cols = 1500;
        let data: Vec<f32> = (0..rows * cols).map(|i| (i as f32).sin()).collect();
        let m = Matrix::from_vec(rows, cols, data);
        let mut buf = Vec::new();
        m.encode(&mut buf);
        assert!(buf.len() > 4 << 20, "encoded {} bytes", buf.len());
        let mut r = Reader::new(&buf);
        let back = Matrix::decode(&mut r).unwrap();
        assert_eq!(back.rows(), rows);
        assert_eq!(back.cols(), cols);
        assert_eq!(back.as_slice(), m.as_slice());
        assert_eq!(r.remaining(), 0);

        // Truncating mid-payload errors at every sampled cut.
        for cut in [16, buf.len() / 3, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(Matrix::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn fnv_detects_single_bit_flips() {
        let data = b"the quick brown fox";
        let h = fnv1a64(data);
        let mut flipped = data.to_vec();
        flipped[3] ^= 0x10;
        assert_ne!(h, fnv1a64(&flipped));
        assert_eq!(h, fnv1a64(data));
    }
}
