//! Row-major dense `f32` matrix with the BLAS-2/3 kernels required by LSTM
//! and attention forward/backward passes.

use crate::simd;
use crate::vector::Vector;
use std::fmt;

/// A row-major dense `f32` matrix.
///
/// Every weight matrix in COM-AID (`W^(i)`, `U^(f)`, `W_d`, `W_s`, ...) is a
/// `Matrix`. The hot kernels (`gemm_nt`, `axpy`, the saxpy row updates)
/// dispatch through [`crate::simd`] to explicit AVX2/SSE2 lanes with a
/// scalar fallback, bit-identical across levels; for the model sizes used
/// in the paper (`d ≤ 200`) this is within a small factor of a tuned BLAS
/// and keeps the crate dependency-free.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Full row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix–vector product `y = A x` (BLAS `gemv`).
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn gemv(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "gemv: dimension mismatch");
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(xs) {
                acc += a * b;
            }
            out.push(acc);
        }
        Vector::from_vec(out)
    }

    /// Fused `y += A x`, avoiding an allocation in hot loops.
    pub fn gemv_acc(&self, x: &Vector, y: &mut Vector) {
        assert_eq!(x.len(), self.cols, "gemv_acc: dimension mismatch");
        assert_eq!(y.len(), self.rows, "gemv_acc: output dimension mismatch");
        let xs = x.as_slice();
        for (yo, row) in y
            .as_mut_slice()
            .iter_mut()
            .zip(self.data.chunks_exact(self.cols.max(1)))
        {
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(xs) {
                acc += a * b;
            }
            *yo += acc;
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ x`, the backward counterpart
    /// of [`Matrix::gemv`]: if `y = A x` then `dL/dx = Aᵀ (dL/dy)`.
    pub fn gemv_t(&self, x: &Vector) -> Vector {
        let mut y = Vector::zeros(self.cols);
        self.gemv_t_acc(x, &mut y);
        y
    }

    /// Fused `y += Aᵀ x`.
    pub fn gemv_t_acc(&self, x: &Vector, y: &mut Vector) {
        assert_eq!(x.len(), self.rows, "gemv_t: dimension mismatch");
        assert_eq!(y.len(), self.cols, "gemv_t: output dimension mismatch");
        let ys = y.as_mut_slice();
        for r in 0..self.rows {
            let xr = x[r];
            // The zero-skip is bitwise-observable (it suppresses an
            // `y += 0 * a` rounding step on infinities/NaN and -0.0
            // signs), so it stays; the row update itself is a saxpy.
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            simd::saxpy(ys, xr, row);
        }
    }

    /// Accumulates the outer product `self += alpha * u vᵀ`; the gradient
    /// kernel for every weight matrix (`dW += dy xᵀ`).
    pub fn add_outer(&mut self, alpha: f32, u: &Vector, v: &Vector) {
        assert_eq!(u.len(), self.rows, "add_outer: row dimension mismatch");
        assert_eq!(v.len(), self.cols, "add_outer: col dimension mismatch");
        let vs = v.as_slice();
        for r in 0..self.rows {
            let c = alpha * u[r];
            if c == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            simd::saxpy(row, c, vs);
        }
    }

    /// Matrix product `C = A B` (BLAS `gemm`, ikj loop order).
    pub fn gemm(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "gemm: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                simd::saxpy(crow, a, brow);
            }
        }
        out
    }

    /// Blocked matrix product against a transposed right operand:
    /// `C = A Bᵀ`, i.e. `C[i][j] = A.row(i) · B.row(j)` — both operands
    /// are walked along contiguous rows, so no transpose is materialised.
    ///
    /// This is the serving-side scoring kernel: with `A` holding one
    /// decoder state `s̃_t` per candidate (k × d) and `B` the output
    /// weights `W_s` (|V| × d), one call produces the logits of every
    /// candidate while streaming the large `W_s` through the cache
    /// exactly once. Rows of `B` are processed in tiles of
    /// [`Matrix::GEMM_NT_TILE`]: each tile is transposed into a small
    /// column-major scratch so [`simd::colmajor_gemv_acc`] can vectorise
    /// across the tile's outputs while the tile stays cache-resident
    /// across all rows of `A`.
    ///
    /// Each output entry is an independent ascending-index dot product —
    /// the same accumulation order as [`Matrix::gemv`]/[`Matrix::gemv_acc`]
    /// — so `gemm_nt` results are bit-identical to row-by-row `gemv` at
    /// every SIMD dispatch level (see the [`simd`] module contract).
    pub fn gemm_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "gemm_nt: inner dimension mismatch");
        let d = self.cols;
        let mut out = Matrix::zeros(self.rows, other.rows);
        let mut scratch = vec![0.0f32; d * Self::GEMM_NT_TILE.min(other.rows)];
        for jb in (0..other.rows).step_by(Self::GEMM_NT_TILE) {
            let jend = (jb + Self::GEMM_NT_TILE).min(other.rows);
            let w = jend - jb;
            for t in 0..w {
                let brow = &other.data[(jb + t) * d..(jb + t + 1) * d];
                for (k, &b) in brow.iter().enumerate() {
                    scratch[k * w + t] = b;
                }
            }
            let tile = &scratch[..d * w];
            for i in 0..self.rows {
                let arow = &self.data[i * d..(i + 1) * d];
                let crow = &mut out.data[i * other.rows + jb..i * other.rows + jend];
                simd::colmajor_gemv_acc(crow, arow, tile);
            }
        }
        out
    }

    /// [`Matrix::gemm_nt`] against a right operand that the caller has
    /// already transposed: computes `C = A Bᵀ` from `other_t = Bᵀ`
    /// (shape `cols × n`), so `C[i][j] = A.row(i) · B.row(j)` with `B`'s
    /// columns streaming contiguously — no per-tile transpose scratch.
    ///
    /// The serving cache keeps the composite/output weight transposes
    /// resident and calls this on every decoder step. Output bits are
    /// identical to `self.gemm_nt(&B)` (and therefore to row-by-row
    /// [`Matrix::gemv`]): the accumulation per output entry is the same
    /// fresh-accumulator ascending-index reduction.
    ///
    /// # Panics
    /// Panics if `other_t.rows() != self.cols()`.
    pub fn gemm_nt_with_t(&self, other_t: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other_t.rows,
            "gemm_nt_with_t: inner dimension mismatch"
        );
        let n = other_t.cols;
        let mut out = Matrix::zeros(self.rows, n);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let crow = &mut out.data[i * n..(i + 1) * n];
            simd::colmajor_gemv_acc(crow, arow, &other_t.data);
        }
        out
    }

    /// Tile height (rows of the right operand) for [`Matrix::gemm_nt`]:
    /// 32 rows of `d ≤ 200` floats fit comfortably in L1 alongside one
    /// left-operand row, and give the AVX2 kernel four full-width
    /// accumulators per pass.
    pub const GEMM_NT_TILE: usize = 32;

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "axpy: row mismatch");
        assert_eq!(self.cols, other.cols, "axpy: col mismatch");
        simd::saxpy(&mut self.data, alpha, &other.data);
    }

    /// In-place `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        simd::scale(&mut self.data, alpha);
    }

    /// Frobenius norm (root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of squared entries, used for global gradient-norm clipping.
    pub fn sq_sum(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Returns true if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Copies row `r` into a new [`Vector`].
    pub fn row_vector(&self, r: usize) -> Vector {
        Vector::from_slice(self.row(r))
    }

    /// Overwrites row `r` with `v`.
    pub fn set_row(&mut self, r: usize, v: &Vector) {
        assert_eq!(v.len(), self.cols, "set_row: dimension mismatch");
        self.row_mut(r).copy_from_slice(v.as_slice());
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{}) [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn gemv_matches_manual() {
        let m = sample();
        let x = Vector::from_slice(&[1.0, 0.0, -1.0]);
        let y = m.gemv(&x);
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn gemv_t_is_transpose_gemv() {
        let m = sample();
        let x = Vector::from_slice(&[1.0, 2.0]);
        let y = m.gemv_t(&x);
        let yt = m.transpose().gemv(&x);
        assert_eq!(y.as_slice(), yt.as_slice());
    }

    #[test]
    fn identity_gemv_is_noop() {
        let m = Matrix::identity(4);
        let x = Vector::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        assert_eq!(m.gemv(&x).as_slice(), x.as_slice());
    }

    #[test]
    fn add_outer_rank_one() {
        let mut m = Matrix::zeros(2, 2);
        let u = Vector::from_slice(&[1.0, 2.0]);
        let v = Vector::from_slice(&[3.0, 4.0]);
        m.add_outer(1.0, &u, &v);
        assert_eq!(m.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn gemm_against_identity() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.gemm(&i3).as_slice(), m.as_slice());
    }

    #[test]
    fn gemm_manual_2x2() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.gemm(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_nt_matches_gemm_of_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.25 - 1.0).collect());
        let fast = a.gemm_nt(&b);
        let slow = a.gemm(&b.transpose());
        assert_eq!(fast.rows(), 2);
        assert_eq!(fast.cols(), 4);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gemm_nt_rows_bit_match_gemv() {
        // The serving cache depends on gemm_nt being *bit-identical* to
        // per-row gemv, tile boundaries included (70 rows spans three
        // tiles of 32, the last one ragged).
        let d = 7;
        let a = Matrix::from_vec(3, d, (0..3 * d).map(|i| (i as f32).sin()).collect());
        let b = Matrix::from_vec(70, d, (0..70 * d).map(|i| (i as f32 * 0.7).cos()).collect());
        let c = a.gemm_nt(&b);
        for i in 0..3 {
            let y = b.gemv(&a.row_vector(i));
            for j in 0..70 {
                assert_eq!(c[(i, j)].to_bits(), y[j].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_nt_with_t_bit_matches_gemm_nt() {
        let d = 11;
        let n = 70;
        let a = Matrix::from_vec(4, d, (0..4 * d).map(|i| (i as f32 * 0.3).sin()).collect());
        let b = Matrix::from_vec(n, d, (0..n * d).map(|i| (i as f32 * 0.9).cos()).collect());
        let bt = b.transpose();
        let c = a.gemm_nt(&b);
        let ct = a.gemm_nt_with_t(&bt);
        assert_eq!(ct.rows(), 4);
        assert_eq!(ct.cols(), n);
        for (x, y) in c.as_slice().iter().zip(ct.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_nt_with_t_wrong_dim_panics() {
        let _ = sample().gemm_nt_with_t(&Matrix::zeros(2, 4));
    }

    #[test]
    fn simd_levels_agree_on_gemm_nt() {
        // In-process SIMD == scalar agreement for the serving kernel at
        // every level this machine supports.
        use crate::simd;
        let d = 13;
        let a = Matrix::from_vec(5, d, (0..5 * d).map(|i| (i as f32 * 0.41).sin()).collect());
        let b = Matrix::from_vec(
            37,
            d,
            (0..37 * d).map(|i| (i as f32 * 0.17).cos()).collect(),
        );
        let reference = simd::with_level(simd::Level::Scalar, || a.gemm_nt(&b));
        for level in simd::supported_levels() {
            let got = simd::with_level(level, || a.gemm_nt(&b));
            for (x, y) in got.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "level {}", level.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_nt_wrong_dim_panics() {
        let _ = sample().gemm_nt(&Matrix::zeros(2, 4));
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose().as_slice(), m.as_slice());
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn set_row_round_trips() {
        let mut m = Matrix::zeros(3, 2);
        let v = Vector::from_slice(&[7.0, 8.0]);
        m.set_row(1, &v);
        assert_eq!(m.row_vector(1).as_slice(), v.as_slice());
        assert_eq!(m.row_vector(0).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn gemv_wrong_dim_panics() {
        let _ = sample().gemv(&Vector::zeros(2));
    }

    proptest! {
        #[test]
        fn gemv_linearity(
            data in proptest::collection::vec(-2.0f32..2.0, 12),
            x in proptest::collection::vec(-2.0f32..2.0, 4),
            y in proptest::collection::vec(-2.0f32..2.0, 4),
        ) {
            let m = Matrix::from_vec(3, 4, data);
            let vx = Vector::from_slice(&x);
            let vy = Vector::from_slice(&y);
            let lhs = m.gemv(&vx.add(&vy));
            let mut rhs = m.gemv(&vx);
            rhs.add_assign(&m.gemv(&vy));
            for i in 0..3 {
                prop_assert!((lhs[i] - rhs[i]).abs() < 1e-3);
            }
        }

        #[test]
        fn gemv_t_adjoint_identity(
            data in proptest::collection::vec(-2.0f32..2.0, 12),
            x in proptest::collection::vec(-2.0f32..2.0, 4),
            y in proptest::collection::vec(-2.0f32..2.0, 3),
        ) {
            // <A x, y> == <x, A^T y> — the identity manual backprop relies on.
            let m = Matrix::from_vec(3, 4, data);
            let vx = Vector::from_slice(&x);
            let vy = Vector::from_slice(&y);
            let lhs = m.gemv(&vx).dot(&vy);
            let rhs = vx.dot(&m.gemv_t(&vy));
            prop_assert!((lhs - rhs).abs() < 1e-2);
        }

        #[test]
        fn gemm_nt_equals_transposed_gemm(
            a in proptest::collection::vec(-2.0f32..2.0, 10),
            b in proptest::collection::vec(-2.0f32..2.0, 35),
        ) {
            let a = Matrix::from_vec(2, 5, a);
            let b = Matrix::from_vec(7, 5, b);
            let fast = a.gemm_nt(&b);
            let slow = a.gemm(&b.transpose());
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
