//! A persistent, chunk-deal worker pool for data-parallel kernels.
//!
//! Both the online linker (Appendix B.1: "use ten threads to perform ED")
//! and the data-parallel trainer fan a fixed set of independent jobs out
//! to workers many times per second. Spawning OS threads per call
//! (`std::thread::scope`) costs roughly as much as scoring one candidate,
//! so the pool keeps its threads alive across calls: [`WorkerPool::new`]
//! spawns them once, [`WorkerPool::run`] deals a batch of jobs out and
//! blocks until every job has finished, and dropping the pool shuts the
//! threads down. [`WorkerPool::run_with`] is the submit-without-
//! participating variant: the batch runs on the spawned workers only
//! while the caller executes its own closure alongside them — the seam
//! the open-loop serving front end uses to keep feeding a queue that
//! long-lived worker-loop jobs drain.
//!
//! Design constraints, in order:
//!
//! 1. **No work stealing.** Jobs are dealt round-robin at submit time and
//!    never migrate. Callers that need deterministic *results* get them
//!    for free because [`WorkerPool::run`] is a barrier and job outputs
//!    go to caller-chosen (disjoint) slots — scheduling order can never
//!    reorder a reduction the caller performs after the barrier.
//! 2. **Borrow-friendly jobs.** `run` accepts closures that borrow the
//!    caller's stack (`'scope` lifetimes, like `std::thread::scope`); it
//!    is sound because `run` does not return until every job has been
//!    executed or the pool thread holding it has processed it, even when
//!    jobs panic.
//! 3. **Panic isolation.** A panicking job never poisons a worker thread
//!    or deadlocks the barrier; the first panic payload is re-raised on
//!    the calling thread after *all* jobs of the batch have finished.
//!
//! The caller participates: lane 0 is the submitting thread itself, so
//! `WorkerPool::new(1)` spawns nothing and `run` degenerates to a plain
//! in-order loop — single-threaded configurations pay no synchronisation.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job as stored in a lane: type-erased and lifetime-erased (see the
/// safety argument on [`WorkerPool::run`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

enum Msg {
    Run(Job),
    Shutdown,
}

/// One worker's mailbox.
struct Lane {
    queue: Mutex<VecDeque<Msg>>,
    ready: Condvar,
}

impl Lane {
    fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, msg: Msg) {
        let mut q = self.queue.lock().unwrap();
        q.push_back(msg);
        self.ready.notify_one();
    }

    fn pop(&self) -> Msg {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(msg) = q.pop_front() {
                return msg;
            }
            q = self.ready.wait(q).unwrap();
        }
    }
}

/// Completion latch for one `run` batch: counts down as jobs finish and
/// stores the first panic payload.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: jobs,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Marks one job finished (optionally with a panic payload). Always
    /// called exactly once per job, panic or not — the barrier depends
    /// on it.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut s = self.state.lock().unwrap();
        if s.panic.is_none() {
            s.panic = panic;
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every job has completed; returns the first panic.
    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut s = self.state.lock().unwrap();
        while s.remaining > 0 {
            s = self.done.wait(s).unwrap();
        }
        s.panic.take()
    }
}

/// A fixed-size pool of long-lived worker threads with a submit-and-wait
/// API. See the module docs for the design rationale.
pub struct WorkerPool {
    lanes: Vec<Arc<Lane>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with `threads` total executors: the calling thread
    /// plus `threads − 1` spawned workers. `threads` is clamped to at
    /// least 1; `WorkerPool::new(1)` spawns nothing and [`run`] executes
    /// inline.
    ///
    /// [`run`]: WorkerPool::run
    pub fn new(threads: usize) -> Self {
        let spawned = threads.max(1) - 1;
        let lanes: Vec<Arc<Lane>> = (0..spawned).map(|_| Arc::new(Lane::new())).collect();
        let handles = lanes
            .iter()
            .cloned()
            .map(|lane| {
                std::thread::Builder::new()
                    .name("ncl-pool-worker".into())
                    .spawn(move || {
                        // The latch-completing wrapper inside `run`
                        // contains the `catch_unwind`; a job can never
                        // unwind into this loop. `Shutdown` ends it.
                        while let Msg::Run(job) = lane.pop() {
                            job();
                        }
                    })
                    .expect("pool: failed to spawn worker thread")
            })
            .collect();
        Self { lanes, handles }
    }

    /// Total executors (spawned workers plus the calling thread).
    pub fn threads(&self) -> usize {
        self.lanes.len() + 1
    }

    /// Runs `body` on the calling thread while `jobs` execute on the
    /// pool's **spawned** workers; returns `body`'s value once every job
    /// has finished.
    ///
    /// This is the submission seam [`run`] cannot provide: `run` deals a
    /// share of the batch to the calling thread, so a caller that must
    /// keep doing its own concurrent work — e.g. a serving front end
    /// feeding a request queue while long-lived worker loops drain it —
    /// would be stuck executing jobs instead of submitting. Here jobs go
    /// round-robin to the spawned lanes only, and `body` runs alongside
    /// them on the caller's thread.
    ///
    /// `run_with` is still a barrier: after `body` returns (or panics —
    /// the unwind is caught first) it blocks until the completion latch
    /// has counted every job, which is exactly what makes the `'scope`
    /// borrows sound (same argument as [`run`]). Long-running jobs must
    /// therefore terminate once `body` is done; the intended shape is a
    /// loop draining a channel that `body` closes on exit (via a
    /// close-on-drop guard, so the jobs also wind down when `body`
    /// unwinds).
    ///
    /// With no spawned workers (`threads() == 1`) there is nowhere to
    /// run jobs concurrently: `body` runs first, then the jobs execute
    /// inline on the calling thread, in submission order. Jobs that rely
    /// on `body` for termination still work in this degenerate case
    /// provided they do not *block* on work only `body` produces after
    /// its return (a drained-then-closed queue qualifies).
    ///
    /// Panics in jobs are isolated and re-raised after the barrier, like
    /// [`run`]. When both `body` and a job panic, `body`'s panic wins
    /// (it is the caller's own unwind; the job payload is dropped).
    ///
    /// [`run`]: WorkerPool::run
    pub fn run_with<'scope, R>(
        &self,
        jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>,
        body: impl FnOnce() -> R,
    ) -> R {
        let latch = Arc::new(Latch::new(jobs.len()));
        let mut inline: Vec<Job> = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: identical to `run` — the erased 'scope borrows
            // cannot outlive this frame because `latch.wait()` below
            // blocks until every job (completed or panicked) has been
            // counted down, and the wrapper completes the latch whether
            // or not the job unwinds.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            let latch = Arc::clone(&latch);
            let wrapped: Job = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                latch.complete(result.err());
            });
            if self.lanes.is_empty() {
                inline.push(wrapped);
            } else {
                self.lanes[i % self.lanes.len()].push(Msg::Run(wrapped));
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(body));
        for job in inline {
            job();
        }
        let job_panic = latch.wait();
        match outcome {
            Ok(r) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                r
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Runs a batch of jobs, blocking until all of them have finished.
    ///
    /// Jobs are dealt round-robin: job `i` goes to executor
    /// `i mod threads()`, where executor 0 is the calling thread (which
    /// runs its share after dispatching the rest). If any job panicked,
    /// the first panic payload is re-raised here — after the barrier, so
    /// no job is ever left running when `run` returns.
    ///
    /// Concurrent `run` calls from different threads on a shared pool are
    /// allowed; each call only waits on its own jobs.
    pub fn run<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        let executors = self.threads();
        let mut inline: Vec<Job> = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: the job may borrow data with lifetime 'scope from
            // the caller's stack. We erase that lifetime to hand the job
            // to a long-lived worker, which is sound because this
            // function does not return before the latch has counted every
            // job — completed or panicked — down (see `wait` below): the
            // borrows can never outlive the frame that owns them. The
            // wrapper is panic-safe by construction: `complete` runs
            // whether or not the job unwinds, so `wait` cannot deadlock.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            let latch = Arc::clone(&latch);
            let wrapped: Job = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                latch.complete(result.err());
            });
            match i % executors {
                0 => inline.push(wrapped),
                lane => self.lanes[lane - 1].push(Msg::Run(wrapped)),
            }
        }
        for job in inline {
            job();
        }
        if let Some(payload) = latch.wait() {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for lane in &self.lanes {
            lane.push(Msg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn runs_every_job_once() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let counter = AtomicUsize::new(0);
            let jobs = (0..23)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.run(jobs);
            assert_eq!(counter.load(Ordering::Relaxed), 23);
        }
    }

    #[test]
    fn jobs_write_borrowed_output_slots() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 10];
        let jobs = out
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| boxed(move || *slot = i * i))
            .collect();
        pool.run(jobs);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            let jobs = (0..4)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn panic_in_one_job_reaches_caller_after_barrier() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
                .map(|i| {
                    let finished = &finished;
                    boxed(move || {
                        if i == 3 {
                            panic!("job 3 exploded");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.run(jobs);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // Barrier semantics: every non-panicking job still ran.
        assert_eq!(finished.load(Ordering::Relaxed), 5);
        // The pool survives the panic and keeps working.
        let counter = AtomicUsize::new(0);
        pool.run(vec![boxed(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        })]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(4);
        pool.run(Vec::new());
    }

    #[test]
    fn single_thread_pool_spawns_nothing_and_runs_in_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = Mutex::new(Vec::new());
        let jobs = (0..5)
            .map(|i| {
                let order = &order;
                boxed(move || order.lock().unwrap().push(i))
            })
            .collect();
        pool.run(jobs);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_with_overlaps_body_and_jobs() {
        use std::sync::atomic::AtomicBool;
        let pool = WorkerPool::new(2); // one spawned lane
        let go = AtomicBool::new(false);
        let saw_go = AtomicBool::new(false);
        let result = pool.run_with(
            vec![boxed(|| {
                // The job only makes progress after `body` has started
                // running — impossible unless they overlap.
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                while !go.load(Ordering::Acquire) {
                    if std::time::Instant::now() >= deadline {
                        return; // fail via the assert below, not a hang
                    }
                    std::thread::yield_now();
                }
                saw_go.store(true, Ordering::Release);
            })],
            || {
                go.store(true, Ordering::Release);
                42
            },
        );
        assert_eq!(result, 42);
        assert!(
            saw_go.load(Ordering::Acquire),
            "job must observe the flag set by the concurrently running body"
        );
    }

    #[test]
    fn run_with_degenerates_to_body_then_jobs_inline() {
        let pool = WorkerPool::new(1); // no spawned lanes
        let order = Mutex::new(Vec::new());
        let jobs = (0..3)
            .map(|i| {
                let order = &order;
                boxed(move || order.lock().unwrap().push(i))
            })
            .collect();
        let r = pool.run_with(jobs, || {
            order.lock().unwrap().push(100);
            "done"
        });
        assert_eq!(r, "done");
        assert_eq!(*order.lock().unwrap(), vec![100, 0, 1, 2]);
    }

    #[test]
    fn run_with_reraises_job_panics_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let jobs = (0..4)
                .map(|i| {
                    let finished = &finished;
                    boxed(move || {
                        if i == 1 {
                            panic!("job 1 exploded");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.run_with(jobs, || ())
        }));
        assert!(caught.is_err(), "job panic must reach the caller");
        assert_eq!(finished.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_with_body_panic_still_joins_jobs() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let jobs = (0..2)
                .map(|_| {
                    let finished = &finished;
                    boxed(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.run_with(jobs, || panic!("body exploded"))
        }));
        assert!(caught.is_err(), "body panic must propagate");
        // The barrier held: both jobs ran to completion before the
        // panic was re-raised, so their borrows were released safely.
        assert_eq!(finished.load(Ordering::Relaxed), 2);
        // The pool remains usable.
        pool.run(vec![boxed(|| {
            finished.fetch_add(1, Ordering::Relaxed);
        })]);
        assert_eq!(finished.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = AtomicUsize::new(0);
        pool.run(vec![boxed(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        })]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
