//! A dense, heap-allocated `f32` vector with the BLAS-1 kernels used by the
//! neural-network layers in `ncl-nn`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `f32` vector.
///
/// `Vector` is the unit of data flowing through the COM-AID network: word
/// embeddings, LSTM gate activations, hidden states, attention contexts and
/// output logits are all `Vector`s. It wraps a `Vec<f32>` and exposes the
/// small set of in-place kernels that manual back-propagation needs, so hot
/// loops avoid intermediate allocations.
#[derive(Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn full(n: usize, value: f32) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Builds a vector from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Dimension of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has dimension zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Sets every component to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Dot product `self · other`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot(&self, other: &Self) -> f32 {
        assert_eq!(self.len(), other.len(), "dot: dimension mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// In-place `self += alpha * x` (the BLAS `axpy` kernel), dispatched
    /// through [`crate::simd`] — bit-identical to the scalar loop at
    /// every level.
    #[inline]
    pub fn axpy(&mut self, alpha: f32, x: &Self) {
        assert_eq!(self.len(), x.len(), "axpy: dimension mismatch");
        crate::simd::saxpy(&mut self.data, alpha, &x.data);
    }

    /// In-place `self += x`.
    ///
    /// `1.0 * v` is bitwise `v` under IEEE 754, so this is exactly the
    /// `axpy(1.0, ..)` it has always been.
    #[inline]
    pub fn add_assign(&mut self, x: &Self) {
        self.axpy(1.0, x);
    }

    /// In-place `self *= alpha`, dispatched through [`crate::simd`].
    #[inline]
    pub fn scale(&mut self, alpha: f32) {
        crate::simd::scale(&mut self.data, alpha);
    }

    /// Returns `self + other` as a new vector.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Returns `self - other` as a new vector.
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "sub: dimension mismatch");
        Self::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        )
    }

    /// Element-wise (Hadamard) product, written `⊙` in the paper's Eq. for
    /// the LSTM cell: `h_t = o_t ⊙ tanh(c_t)`.
    pub fn hadamard(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "hadamard: dimension mismatch");
        Self::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        )
    }

    /// In-place element-wise product `self ⊙= other`.
    pub fn hadamard_assign(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "hadamard: dimension mismatch");
        for (s, v) in self.data.iter_mut().zip(&other.data) {
            *s *= v;
        }
    }

    /// Accumulates `alpha * a ⊙ b` into `self`; the fused kernel for LSTM
    /// backward passes (`dc += do ⊙ tanh'(c)` and friends).
    pub fn add_hadamard(&mut self, alpha: f32, a: &Self, b: &Self) {
        assert_eq!(self.len(), a.len(), "add_hadamard: dimension mismatch");
        assert_eq!(self.len(), b.len(), "add_hadamard: dimension mismatch");
        for ((s, x), y) in self.data.iter_mut().zip(&a.data).zip(&b.data) {
            *s += alpha * x * y;
        }
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Sum of all components.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the largest component, or `None` for an empty vector.
    /// Ties resolve to the lowest index, and NaNs are never selected unless
    /// all entries are NaN.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            match best {
                Some((_, b)) if v <= b => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
            .or(if self.data.is_empty() { None } else { Some(0) })
    }

    /// Cosine similarity between two vectors; zero if either has zero norm.
    ///
    /// Used for query rewriting (Eq. 13) and the embedding nearest-neighbour
    /// search of Section 5, Phase I.
    pub fn cosine(&self, other: &Self) -> f32 {
        let na = self.norm();
        let nb = other.norm();
        if na <= f32::EPSILON || nb <= f32::EPSILON {
            return 0.0;
        }
        (self.dot(other) / (na * nb)).clamp(-1.0, 1.0)
    }

    /// Returns true if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Iterator over components.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }
}

impl Index<usize> for Vector {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector(dim={}, {:?})", self.len(), &self.data)
    }
}

impl FromIterator<f32> for Vector {
    fn from_iter<T: IntoIterator<Item = f32>>(iter: T) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(5);
        assert_eq!(v.len(), 5);
        assert_eq!(v.sum(), 0.0);
        assert!(!v.is_empty());
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_product() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dimension_mismatch_panics() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        let _ = a.dot(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from_slice(&[1.0, 1.0]);
        let x = Vector::from_slice(&[2.0, 3.0]);
        a.axpy(0.5, &x);
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn hadamard_matches_manual() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn add_hadamard_fused() {
        let mut acc = Vector::from_slice(&[1.0, 1.0]);
        let a = Vector::from_slice(&[2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0]);
        acc.add_hadamard(2.0, &a, &b);
        assert_eq!(acc.as_slice(), &[17.0, 31.0]);
    }

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(Vector::from_slice(&[0.1, 0.9, 0.5]).argmax(), Some(1));
        assert_eq!(Vector::from_slice(&[0.9, 0.9]).argmax(), Some(0));
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn argmax_skips_nan() {
        let v = Vector::from_slice(&[f32::NAN, 1.0, 0.5]);
        assert_eq!(v.argmax(), Some(1));
    }

    #[test]
    fn cosine_of_parallel_is_one() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[2.0, 4.0]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let a = Vector::zeros(3);
        let b = Vector::from_slice(&[1.0, 0.0, 0.0]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        let a = Vector::from_slice(&[1.0, 0.0]);
        let b = Vector::from_slice(&[0.0, 1.0]);
        assert!(a.cosine(&b).abs() < 1e-6);
    }

    #[test]
    fn norm_pythagorean() {
        let v = Vector::from_slice(&[3.0, 4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fill_zero_keeps_len() {
        let mut v = Vector::from_slice(&[1.0, 2.0]);
        v.fill_zero();
        assert_eq!(v.as_slice(), &[0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(a in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let n = a.len();
            let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            let va = Vector::from_slice(&a);
            let vb = Vector::from_slice(&b[..n]);
            prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-3);
        }

        #[test]
        fn cosine_bounded(a in proptest::collection::vec(-10.0f32..10.0, 1..32),
                          s in -5.0f32..5.0) {
            let b: Vec<f32> = a.iter().map(|x| x * s + 0.1).collect();
            let c = Vector::from_slice(&a).cosine(&Vector::from_slice(&b));
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        #[test]
        fn axpy_linear_in_alpha(x in proptest::collection::vec(-3.0f32..3.0, 1..16),
                                alpha in -2.0f32..2.0) {
            let vx = Vector::from_slice(&x);
            let mut a = Vector::zeros(x.len());
            a.axpy(alpha, &vx);
            for i in 0..x.len() {
                prop_assert!((a[i] - alpha * x[i]).abs() < 1e-4);
            }
        }
    }
}
