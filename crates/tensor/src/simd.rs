//! Runtime-dispatched SIMD kernels (AVX2 / SSE2 / scalar).
//!
//! # The bit-identity contract
//!
//! Every *exact* kernel in this module produces output **bit-identical**
//! to its scalar reference at every dispatch level. The trick is to
//! vectorise **across independent outputs**, never across a reduction:
//!
//! * Element-wise kernels ([`saxpy`], [`add_assign`], [`scale`]) perform
//!   exactly one `mul`/`add` per element — the same operation the scalar
//!   loop performs, just eight lanes at a time.
//! * [`colmajor_gemv_acc`] computes `y[j] += Σ_k x[k]·wt[k][j]` with one
//!   fresh accumulator per output `j`, consuming `k` in ascending order
//!   with a separate multiply and add per term (never an FMA, which
//!   would skip the intermediate rounding). Each SIMD lane therefore
//!   executes the *same sequence of roundings* as the scalar dot
//!   product, so the lanes are bit-identical to scalar by construction.
//! * [`max`] exploits that the maximum of finite floats is independent
//!   of association order.
//!
//! This is what lets the serving cache's "same score to the last bit"
//! guarantee, the golden serving snapshot, and the bit-identical
//! parallel-training losses survive vectorisation unchanged.
//!
//! # Relaxed kernels
//!
//! The `*_relaxed` kernels ([`dot_relaxed`], [`sum_exp_relaxed`]) trade
//! the scalar reduction order for speed: partial sums are kept in a
//! **fixed virtual 8-lane layout** (element `i` belongs to lane
//! `i mod 8`) and combined in a fixed binary tree, and the exponential
//! is the polynomial [`exp_approx`] instead of libm. They are *not*
//! bit-equal to the exact kernels — but they are deterministic, and the
//! scalar fallback emulates the same 8 lanes, tree, and polynomial, so
//! a relaxed kernel returns the same bits at every dispatch level too.
//! Relaxed kernels only run behind `LinkerConfig::fast_math` (off by
//! default).
//!
//! # Dispatch
//!
//! The level is detected once per process ([`active`]): AVX2 when the
//! CPU reports it, otherwise SSE2 (baseline on `x86_64`), otherwise
//! scalar. Setting the environment variable `NCL_FORCE_SCALAR` (to
//! anything but `0`/`false`/empty) forces the scalar path — the CI
//! scalar-fallback leg runs the whole suite this way. Benches and tests
//! use [`with_level`] to pin a specific level on the current thread.
//!
//! # Adding a kernel
//!
//! 1. Write the scalar reference with an explicit, documented rounding
//!    order (fresh accumulators, ascending index, mul-then-add).
//! 2. Mirror it per lane in `sse2`/`avx2` `#[target_feature]` functions
//!    — same operations, same order, no FMA for exact kernels.
//! 3. Dispatch on [`active`] in the public wrapper.
//! 4. Add the kernel to the bit-identity proptests
//!    (`crates/tensor/tests/simd_identity.rs`) across awkward sizes and
//!    unaligned offsets, and to the `fig16_kernels` microbench.

use std::cell::Cell;
use std::sync::OnceLock;

/// CPU capability tier a kernel call dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Portable scalar reference (any architecture, and the
    /// `NCL_FORCE_SCALAR` override).
    Scalar,
    /// 128-bit SSE2 lanes — baseline on `x86_64`.
    Sse2,
    /// 256-bit AVX2 lanes.
    Avx2,
}

impl Level {
    /// Human-readable name (`"scalar"`, `"sse2"`, `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Sse2 => "sse2",
            Level::Avx2 => "avx2",
        }
    }
}

/// Whether `NCL_FORCE_SCALAR`'s value requests the scalar override.
/// Empty, `0`, and `false` (any case) do not; anything else does.
pub fn force_scalar_requested(value: Option<&str>) -> bool {
    match value {
        Some(s) => !s.is_empty() && s != "0" && !s.eq_ignore_ascii_case("false"),
        None => false,
    }
}

fn detect() -> Level {
    if force_scalar_requested(std::env::var("NCL_FORCE_SCALAR").ok().as_deref()) {
        return Level::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Level::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            Level::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    Level::Scalar
}

static GLOBAL: OnceLock<Level> = OnceLock::new();

thread_local! {
    static OVERRIDE: Cell<Option<Level>> = const { Cell::new(None) };
}

/// The dispatch level kernel calls on this thread currently use: the
/// innermost [`with_level`] override if one is active, otherwise the
/// process-wide detected level (cached after the first call).
pub fn active() -> Level {
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(|| *GLOBAL.get_or_init(detect))
}

/// Whether `level` can run on this machine. [`Level::Scalar`] always
/// can; the SIMD tiers require the corresponding CPU features.
pub fn supported(level: Level) -> bool {
    match level {
        Level::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => true,
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// All levels [`supported`] on this machine, scalar first — the
/// iteration order of the bit-identity test suites.
pub fn supported_levels() -> Vec<Level> {
    [Level::Scalar, Level::Sse2, Level::Avx2]
        .into_iter()
        .filter(|&l| supported(l))
        .collect()
}

/// Runs `f` with every kernel call on this thread pinned to `level`
/// (restored afterwards, panic included). Benches use this to measure
/// scalar vs SIMD in one process; the identity tests use it to compare
/// levels bit-for-bit.
///
/// # Panics
/// Panics if `level` is not [`supported`] on this machine.
pub fn with_level<R>(level: Level, f: impl FnOnce() -> R) -> R {
    assert!(
        supported(level),
        "simd::with_level: {} not supported on this machine",
        level.name()
    );
    struct Restore(Option<Level>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(level))));
    f()
}

// ---------------------------------------------------------------------------
// Exact kernels.
// ---------------------------------------------------------------------------

/// In-place `y[i] += alpha * x[i]` (BLAS `saxpy`), bit-identical to the
/// scalar loop at every level: one `mul` and one `add` per element.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn saxpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "saxpy: dimension mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::saxpy(y, alpha, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { sse2::saxpy(y, alpha, x) },
        _ => scalar::saxpy(y, alpha, x),
    }
}

/// In-place `y[i] += x[i]`, bit-identical to the scalar loop.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "add_assign: dimension mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::add_assign(y, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { sse2::add_assign(y, x) },
        _ => scalar::add_assign(y, x),
    }
}

/// In-place `y[i] *= alpha`, bit-identical to the scalar loop.
pub fn scale(y: &mut [f32], alpha: f32) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::scale(y, alpha) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { sse2::scale(y, alpha) },
        _ => scalar::scale(y, alpha),
    }
}

/// Maximum element, `f32::NEG_INFINITY` for an empty slice.
///
/// For inputs **without NaN** this is bit-identical to
/// `x.iter().fold(f32::NEG_INFINITY, f32::max)` at every level (the max
/// of finite floats does not depend on association order; a `-0.0` /
/// `+0.0` tie may resolve to either sign, which no consumer of a
/// maximum can observe through arithmetic that treats them as equal).
/// With NaN present the levels may disagree about the returned value,
/// but every caller in this crate (`log_sum_exp_slice`) then produces
/// NaN regardless.
pub fn max(x: &[f32]) -> f32 {
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::max(x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { sse2::max(x) },
        _ => scalar::max(x),
    }
}

/// Column-major transposed-weight product-accumulate:
/// `y[j] += Σ_k x[k] · wt[k·n + j]` with `n = y.len()` — i.e. `y += Wᵀx`
/// for a row-major `wt` holding `W`ᵀ (one row per input `k`, one column
/// per output `j`).
///
/// Each output keeps a fresh accumulator and consumes `k` in ascending
/// order with a separate `mul` and `add` per term, so the result is
/// bit-identical at every level to the scalar row-dot
/// `acc += w[j][k] * x[k]` of [`Matrix::gemv_acc`](crate::Matrix::gemv_acc)
/// followed by `y[j] += acc`. This is the kernel behind the SIMD
/// `gemm_nt` tiles, the fused LSTM gates, and the transposed-weight
/// dense layers: outputs are contiguous in memory, so lanes vectorise
/// across them while every lane reproduces the scalar reduction.
///
/// # Panics
/// Panics if `wt.len() != x.len() * y.len()`.
pub fn colmajor_gemv_acc(y: &mut [f32], x: &[f32], wt: &[f32]) {
    assert_eq!(
        wt.len(),
        x.len() * y.len(),
        "colmajor_gemv_acc: weight shape mismatch"
    );
    if y.is_empty() || x.is_empty() {
        return;
    }
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::colmajor_gemv_acc(y, x, wt) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { sse2::colmajor_gemv_acc(y, x, wt) },
        _ => scalar::colmajor_gemv_acc(y, x, wt),
    }
}

// ---------------------------------------------------------------------------
// Quantization kernels (bf16 widen/narrow).
//
// The compact serving-cache tier stores per-concept rows as `u16`
// mantissa-trimmed floats: the upper 16 bits of the f32 pattern (sign,
// the full 8-bit exponent, the top 7 mantissa bits — the bfloat16
// layout). Both directions are pure integer bit manipulation, so every
// dispatch level produces identical bits *by construction*: there is no
// floating-point rounding to reorder.
// ---------------------------------------------------------------------------

/// Narrows one f32 to its bf16 bit pattern with round-to-nearest-even
/// on the 16 dropped mantissa bits (the rounding increment carries into
/// the exponent when the mantissa overflows, which is the correct
/// next-power-of-two result; infinities pass through, NaNs stay NaN).
#[inline]
pub fn narrow_bf16_one(x: f32) -> u16 {
    let bits = x.to_bits();
    // Round-to-nearest-even in integer arithmetic: add 0x7FFF plus the
    // current LSB of the kept half, then truncate. Wrapping matches the
    // two's-complement SIMD adds on exotic NaN patterns.
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// Widens one bf16 bit pattern back to f32 — exact (the low 16 mantissa
/// bits are zero-filled).
#[inline]
pub fn widen_bf16_one(q: u16) -> f32 {
    f32::from_bits((q as u32) << 16)
}

/// Narrows `src` into `dst` as bf16 bit patterns
/// ([`narrow_bf16_one`] element-wise). Bit-identical at every dispatch
/// level: the conversion is integer-only.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn narrow_bf16(dst: &mut [u16], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "narrow_bf16: dimension mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::narrow_bf16(dst, src) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { sse2::narrow_bf16(dst, src) },
        _ => scalar::narrow_bf16(dst, src),
    }
}

/// Widens bf16 bit patterns in `src` into `dst`
/// ([`widen_bf16_one`] element-wise) — the compact cache tier's
/// dequantization. Exact and bit-identical at every dispatch level.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn widen_bf16(dst: &mut [f32], src: &[u16]) {
    assert_eq!(dst.len(), src.len(), "widen_bf16: dimension mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::widen_bf16(dst, src) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { sse2::widen_bf16(dst, src) },
        _ => scalar::widen_bf16(dst, src),
    }
}

// ---------------------------------------------------------------------------
// Relaxed (fast-math) kernels — deterministic across levels, but NOT
// bit-equal to the exact kernels. Gated behind `LinkerConfig::fast_math`.
// ---------------------------------------------------------------------------

/// Combines eight lane partial sums in a fixed binary tree — the single
/// reduction order every relaxed kernel uses at every level.
#[inline]
fn tree8(l: &[f32; 8]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Relaxed dot product: partial sums in the fixed virtual 8-lane layout
/// (element `i` → lane `i mod 8`), combined by the fixed `tree8` lane
/// tree. Same bits at every level; differs from the sequential
/// [`Vector::dot`](crate::Vector::dot) by ordinary rounding noise
/// (≈1 ulp per lane length).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn dot_relaxed(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_relaxed: dimension mismatch");
    let mut lanes = [0.0f32; 8];
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::dot_lanes(&mut lanes, a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { sse2::dot_lanes(&mut lanes, a, b) },
        _ => scalar::dot_lanes(&mut lanes, a, b),
    }
    tree8(&lanes)
}

/// Relaxed `Σ_i exp(x[i] − m)` — the shifted exponential sum of a
/// log-sum-exp — using the [`exp_approx`] polynomial and the fixed
/// 8-lane layout of [`dot_relaxed`]. Same bits at every level.
///
/// The caller is expected to pass `m = max(x)` so every shifted
/// argument is `≤ 0`; arguments are clamped to the polynomial's domain
/// either way.
pub fn sum_exp_relaxed(x: &[f32], m: f32) -> f32 {
    let mut lanes = [0.0f32; 8];
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 was verified by `active()`'s detection.
        Level::Avx2 => unsafe { avx2::sum_exp_lanes(&mut lanes, x, m) },
        _ => scalar::sum_exp_lanes(&mut lanes, x, m),
    }
    tree8(&lanes)
}

/// Domain clamp of [`exp_approx`]: below, `2^n` stays a normal float.
const EXP_LO: f32 = -87.0;
/// Upper domain clamp of [`exp_approx`] (`exp(88) < f32::MAX`).
const EXP_HI: f32 = 88.0;
// Cephes `expf` constants, written with the full decimal expansions of
// the intended f32 bit patterns (clippy sees "excessive precision" /
// "approximate LOG2_E", but rounding the literals would change the
// polynomial and therefore the cross-level bit contract).
#[allow(clippy::excessive_precision, clippy::approx_constant)]
const LOG2E: f32 = 1.442_695_04;
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
#[allow(clippy::excessive_precision)]
const EXP_P0: f32 = 1.987_569_15e-4;
#[allow(clippy::excessive_precision)]
const EXP_P1: f32 = 1.398_199_95e-3;
#[allow(clippy::excessive_precision)]
const EXP_P2: f32 = 8.333_451_9e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
#[allow(clippy::excessive_precision)]
const EXP_P4: f32 = 1.666_666_55e-1;
#[allow(clippy::excessive_precision)]
const EXP_P5: f32 = 5.000_000_1e-1;

/// Polynomial `exp` (cephes-style: range reduction by `log2 e`, a
/// degree-5 minimax polynomial on the reduced argument, exponent
/// reassembly via the IEEE bit layout). Relative error ≈ 1e-7 over the
/// clamped domain `[-87, 88]`. Every operation is an ordinary `f32`
/// mul/add in a fixed order, mirrored exactly by the AVX2 lane version,
/// so relaxed kernels built on it return the same bits at every level.
pub fn exp_approx(x: f32) -> f32 {
    let x = x.clamp(EXP_LO, EXP_HI);
    let n = (x * LOG2E).round_ties_even();
    let r = x - n * LN2_HI;
    let r = r - n * LN2_LO;
    let r2 = r * r;
    let mut p = EXP_P0;
    p = p * r + EXP_P1;
    p = p * r + EXP_P2;
    p = p * r + EXP_P3;
    p = p * r + EXP_P4;
    p = p * r + EXP_P5;
    let y = (p * r2 + r) + 1.0;
    // n is integral and in [-126, 127] after the clamp, so 2^n is a
    // normal float assembled directly in the exponent field.
    let two_n = f32::from_bits((((n as i32) + 127) << 23) as u32);
    y * two_n
}

// ---------------------------------------------------------------------------
// Scalar reference implementations.
// ---------------------------------------------------------------------------

mod scalar {
    use super::exp_approx;
    #[cfg(test)]
    use super::tree8;

    pub fn saxpy(y: &mut [f32], alpha: f32, x: &[f32]) {
        for (s, v) in y.iter_mut().zip(x) {
            *s += alpha * v;
        }
    }

    pub fn add_assign(y: &mut [f32], x: &[f32]) {
        for (s, v) in y.iter_mut().zip(x) {
            *s += v;
        }
    }

    pub fn scale(y: &mut [f32], alpha: f32) {
        for s in y {
            *s *= alpha;
        }
    }

    pub fn max(x: &[f32]) -> f32 {
        x.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    pub fn colmajor_gemv_acc(y: &mut [f32], x: &[f32], wt: &[f32]) {
        let n = y.len();
        for (j, yo) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (k, &xv) in x.iter().enumerate() {
                acc += xv * wt[k * n + j];
            }
            *yo += acc;
        }
    }

    /// Emulates the 8-lane layout of the AVX2 relaxed dot: full chunks
    /// feed lane `i mod 8`, the tail keeps the same assignment, so the
    /// [`tree8`] combine sees identical lane values.
    pub fn dot_lanes(lanes: &mut [f32; 8], a: &[f32], b: &[f32]) {
        let chunks = a.len() / 8;
        for c in 0..chunks {
            for (l, lane) in lanes.iter_mut().enumerate() {
                let i = c * 8 + l;
                *lane += a[i] * b[i];
            }
        }
        for i in chunks * 8..a.len() {
            lanes[i % 8] += a[i] * b[i];
        }
    }

    pub fn sum_exp_lanes(lanes: &mut [f32; 8], x: &[f32], m: f32) {
        let chunks = x.len() / 8;
        for c in 0..chunks {
            for (l, lane) in lanes.iter_mut().enumerate() {
                *lane += exp_approx(x[c * 8 + l] - m);
            }
        }
        for i in chunks * 8..x.len() {
            lanes[i % 8] += exp_approx(x[i] - m);
        }
    }

    /// Standalone scalar relaxed dot for the unit tests.
    #[cfg(test)]
    pub fn dot_relaxed(a: &[f32], b: &[f32]) -> f32 {
        let mut lanes = [0.0f32; 8];
        dot_lanes(&mut lanes, a, b);
        tree8(&lanes)
    }

    pub fn narrow_bf16(dst: &mut [u16], src: &[f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = super::narrow_bf16_one(s);
        }
    }

    pub fn widen_bf16(dst: &mut [f32], src: &[u16]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = super::widen_bf16_one(s);
        }
    }
}

// ---------------------------------------------------------------------------
// SSE2 (128-bit) implementations — baseline on x86_64.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires SSE2 (always present on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn saxpy(y: &mut [f32], alpha: f32, x: &[f32]) {
        let n = y.len();
        let a = _mm_set1_ps(alpha);
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let yv = _mm_loadu_ps(yp.add(i));
            let xv = _mm_loadu_ps(xp.add(i));
            _mm_storeu_ps(yp.add(i), _mm_add_ps(yv, _mm_mul_ps(a, xv)));
            i += 4;
        }
        while i < n {
            y[i] += alpha * x[i];
            i += 1;
        }
    }

    /// # Safety
    /// Requires SSE2 (always present on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn add_assign(y: &mut [f32], x: &[f32]) {
        let n = y.len();
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let yv = _mm_loadu_ps(yp.add(i));
            let xv = _mm_loadu_ps(xp.add(i));
            _mm_storeu_ps(yp.add(i), _mm_add_ps(yv, xv));
            i += 4;
        }
        while i < n {
            y[i] += x[i];
            i += 1;
        }
    }

    /// # Safety
    /// Requires SSE2 (always present on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn scale(y: &mut [f32], alpha: f32) {
        let n = y.len();
        let a = _mm_set1_ps(alpha);
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let yv = _mm_loadu_ps(yp.add(i));
            _mm_storeu_ps(yp.add(i), _mm_mul_ps(yv, a));
            i += 4;
        }
        while i < n {
            y[i] *= alpha;
            i += 1;
        }
    }

    /// # Safety
    /// Requires SSE2 (always present on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn max(x: &[f32]) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        let mut m = f32::NEG_INFINITY;
        let mut i = 0;
        if n >= 4 {
            let mut acc = _mm_set1_ps(f32::NEG_INFINITY);
            while i + 4 <= n {
                acc = _mm_max_ps(acc, _mm_loadu_ps(xp.add(i)));
                i += 4;
            }
            let mut lanes = [0.0f32; 4];
            _mm_storeu_ps(lanes.as_mut_ptr(), acc);
            for l in lanes {
                m = m.max(l);
            }
        }
        while i < n {
            m = m.max(x[i]);
            i += 1;
        }
        m
    }

    /// # Safety
    /// Requires SSE2 (always present on `x86_64`).
    ///
    /// Register-blocked over outputs: 16-wide tiles (4 xmm
    /// accumulators), then 4-wide, then a scalar tail. Per lane, the
    /// reduction is the scalar order exactly (fresh accumulator,
    /// ascending `k`, mul then add — no FMA).
    #[target_feature(enable = "sse2")]
    pub unsafe fn colmajor_gemv_acc(y: &mut [f32], x: &[f32], wt: &[f32]) {
        let n = y.len();
        let m = x.len();
        let wp = wt.as_ptr();
        let yp = y.as_mut_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let mut a0 = _mm_setzero_ps();
            let mut a1 = _mm_setzero_ps();
            let mut a2 = _mm_setzero_ps();
            let mut a3 = _mm_setzero_ps();
            for (k, &xv) in x.iter().enumerate() {
                let xb = _mm_set1_ps(xv);
                let row = wp.add(k * n + j);
                a0 = _mm_add_ps(a0, _mm_mul_ps(xb, _mm_loadu_ps(row)));
                a1 = _mm_add_ps(a1, _mm_mul_ps(xb, _mm_loadu_ps(row.add(4))));
                a2 = _mm_add_ps(a2, _mm_mul_ps(xb, _mm_loadu_ps(row.add(8))));
                a3 = _mm_add_ps(a3, _mm_mul_ps(xb, _mm_loadu_ps(row.add(12))));
            }
            let out = yp.add(j);
            _mm_storeu_ps(out, _mm_add_ps(_mm_loadu_ps(out), a0));
            _mm_storeu_ps(out.add(4), _mm_add_ps(_mm_loadu_ps(out.add(4)), a1));
            _mm_storeu_ps(out.add(8), _mm_add_ps(_mm_loadu_ps(out.add(8)), a2));
            _mm_storeu_ps(out.add(12), _mm_add_ps(_mm_loadu_ps(out.add(12)), a3));
            j += 16;
        }
        while j + 4 <= n {
            let mut a0 = _mm_setzero_ps();
            for (k, &xv) in x.iter().enumerate() {
                let xb = _mm_set1_ps(xv);
                a0 = _mm_add_ps(a0, _mm_mul_ps(xb, _mm_loadu_ps(wp.add(k * n + j))));
            }
            let out = yp.add(j);
            _mm_storeu_ps(out, _mm_add_ps(_mm_loadu_ps(out), a0));
            j += 4;
        }
        while j < n {
            let mut acc = 0.0f32;
            for (k, &xv) in x.iter().enumerate() {
                acc += xv * wt[k * n + j];
            }
            y[j] += acc;
            j += 1;
        }
        let _ = m;
    }

    /// # Safety
    /// Requires SSE2 (always present on `x86_64`).
    ///
    /// Two xmm accumulators hold the virtual 8-lane layout (lanes 0–3
    /// and 4–7); each iteration consumes a full 8-chunk, so lane `l`
    /// sees exactly the elements `i ≡ l (mod 8)` — the same assignment
    /// as `scalar::dot_lanes` and `avx2::dot_lanes`. The tail folds into
    /// the same lanes.
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_lanes(lanes: &mut [f32; 8], a: &[f32], b: &[f32]) {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let al = _mm_loadu_ps(ap.add(i));
            let bl = _mm_loadu_ps(bp.add(i));
            lo = _mm_add_ps(lo, _mm_mul_ps(al, bl));
            let ah = _mm_loadu_ps(ap.add(i + 4));
            let bh = _mm_loadu_ps(bp.add(i + 4));
            hi = _mm_add_ps(hi, _mm_mul_ps(ah, bh));
            i += 8;
        }
        _mm_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), hi);
        while i < n {
            lanes[i % 8] += a[i] * b[i];
            i += 1;
        }
    }

    /// # Safety
    /// Requires SSE2 (always present on `x86_64`).
    ///
    /// Four f32s per iteration: the round-to-nearest-even increment in
    /// 32-bit integer lanes, then the high halves of the four dwords are
    /// gathered into the low 64 bits by 16-bit shuffles (SSE2 has no
    /// unsigned dword→word pack) and stored as four u16s.
    #[target_feature(enable = "sse2")]
    pub unsafe fn narrow_bf16(dst: &mut [u16], src: &[f32]) {
        let n = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let bias = _mm_set1_epi32(0x7FFF);
        let one = _mm_set1_epi32(1);
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm_castps_si128(_mm_loadu_ps(sp.add(i)));
            let lsb = _mm_and_si128(_mm_srli_epi32::<16>(v), one);
            let r = _mm_add_epi32(v, _mm_add_epi32(bias, lsb));
            // Keep the high 16 bits of each dword: h-lanes [1,3,5,7].
            let hi = _mm_srli_epi32::<16>(r);
            // [h0 h2 _ _ | h4 h6 _ _] → dwords 0 and 2 hold the packed
            // words; shuffle them adjacent and store the low 64 bits.
            let lo = _mm_shufflelo_epi16::<0b00_00_10_00>(hi);
            let both = _mm_shufflehi_epi16::<0b00_00_10_00>(lo);
            let packed = _mm_shuffle_epi32::<0b00_00_10_00>(both);
            _mm_storel_epi64(dp.add(i) as *mut _, packed);
            i += 4;
        }
        while i < n {
            dst[i] = super::narrow_bf16_one(src[i]);
            i += 1;
        }
    }

    /// # Safety
    /// Requires SSE2 (always present on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn widen_bf16(dst: &mut [f32], src: &[u16]) {
        let n = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let zero = _mm_setzero_si128();
        let mut i = 0;
        while i + 8 <= n {
            let q = _mm_loadu_si128(sp.add(i) as *const _);
            // Interleaving zeros *below* each word yields `q << 16` per
            // dword — exactly the widened bit pattern.
            let lo = _mm_unpacklo_epi16(zero, q);
            let hi = _mm_unpackhi_epi16(zero, q);
            _mm_storeu_ps(dp.add(i), _mm_castsi128_ps(lo));
            _mm_storeu_ps(dp.add(i + 4), _mm_castsi128_ps(hi));
            i += 8;
        }
        while i < n {
            dst[i] = super::widen_bf16_one(src[i]);
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 (256-bit) implementations.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{
        EXP_HI, EXP_LO, EXP_P0, EXP_P1, EXP_P2, EXP_P3, EXP_P4, EXP_P5, LN2_HI, LN2_LO, LOG2E,
    };
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn saxpy(y: &mut [f32], alpha: f32, x: &[f32]) {
        let n = y.len();
        let a = _mm256_set1_ps(alpha);
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let yv = _mm256_loadu_ps(yp.add(i));
            let xv = _mm256_loadu_ps(xp.add(i));
            _mm256_storeu_ps(yp.add(i), _mm256_add_ps(yv, _mm256_mul_ps(a, xv)));
            i += 8;
        }
        while i < n {
            y[i] += alpha * x[i];
            i += 1;
        }
    }

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign(y: &mut [f32], x: &[f32]) {
        let n = y.len();
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let yv = _mm256_loadu_ps(yp.add(i));
            let xv = _mm256_loadu_ps(xp.add(i));
            _mm256_storeu_ps(yp.add(i), _mm256_add_ps(yv, xv));
            i += 8;
        }
        while i < n {
            y[i] += x[i];
            i += 1;
        }
    }

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(y: &mut [f32], alpha: f32) {
        let n = y.len();
        let a = _mm256_set1_ps(alpha);
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let yv = _mm256_loadu_ps(yp.add(i));
            _mm256_storeu_ps(yp.add(i), _mm256_mul_ps(yv, a));
            i += 8;
        }
        while i < n {
            y[i] *= alpha;
            i += 1;
        }
    }

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn max(x: &[f32]) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        let mut m = f32::NEG_INFINITY;
        let mut i = 0;
        if n >= 8 {
            let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
            while i + 8 <= n {
                acc = _mm256_max_ps(acc, _mm256_loadu_ps(xp.add(i)));
                i += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            for l in lanes {
                m = m.max(l);
            }
        }
        while i < n {
            m = m.max(x[i]);
            i += 1;
        }
        m
    }

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    ///
    /// Register-blocked over outputs: 32-wide tiles (4 ymm
    /// accumulators), then 8-wide, then a scalar tail. Per lane, the
    /// reduction is the scalar order exactly (fresh accumulator,
    /// ascending `k`, mul then add — no FMA).
    #[target_feature(enable = "avx2")]
    pub unsafe fn colmajor_gemv_acc(y: &mut [f32], x: &[f32], wt: &[f32]) {
        let n = y.len();
        let wp = wt.as_ptr();
        let yp = y.as_mut_ptr();
        let mut j = 0;
        while j + 32 <= n {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            for (k, &xv) in x.iter().enumerate() {
                let xb = _mm256_set1_ps(xv);
                let row = wp.add(k * n + j);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xb, _mm256_loadu_ps(row)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(xb, _mm256_loadu_ps(row.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(xb, _mm256_loadu_ps(row.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(xb, _mm256_loadu_ps(row.add(24))));
            }
            let out = yp.add(j);
            _mm256_storeu_ps(out, _mm256_add_ps(_mm256_loadu_ps(out), a0));
            _mm256_storeu_ps(out.add(8), _mm256_add_ps(_mm256_loadu_ps(out.add(8)), a1));
            _mm256_storeu_ps(out.add(16), _mm256_add_ps(_mm256_loadu_ps(out.add(16)), a2));
            _mm256_storeu_ps(out.add(24), _mm256_add_ps(_mm256_loadu_ps(out.add(24)), a3));
            j += 32;
        }
        while j + 8 <= n {
            let mut a0 = _mm256_setzero_ps();
            for (k, &xv) in x.iter().enumerate() {
                let xb = _mm256_set1_ps(xv);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xb, _mm256_loadu_ps(wp.add(k * n + j))));
            }
            let out = yp.add(j);
            _mm256_storeu_ps(out, _mm256_add_ps(_mm256_loadu_ps(out), a0));
            j += 8;
        }
        while j < n {
            let mut acc = 0.0f32;
            for (k, &xv) in x.iter().enumerate() {
                acc += xv * wt[k * n + j];
            }
            y[j] += acc;
            j += 1;
        }
    }

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    ///
    /// Full 8-chunks vectorised, tail folded into the same lanes — the
    /// exact layout `scalar::dot_lanes` emulates.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_lanes(lanes: &mut [f32; 8], a: &[f32], b: &[f32]) {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let av = _mm256_loadu_ps(ap.add(i));
            let bv = _mm256_loadu_ps(bp.add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
            i += 8;
        }
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        while i < n {
            lanes[i % 8] += a[i] * b[i];
            i += 1;
        }
    }

    /// Lane-parallel [`super::exp_approx`]: the identical operation
    /// sequence, eight lanes at a time.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn exp8(x: __m256) -> __m256 {
        let x = _mm256_min_ps(
            _mm256_max_ps(x, _mm256_set1_ps(EXP_LO)),
            _mm256_set1_ps(EXP_HI),
        );
        let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2E)),
        );
        let r = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(LN2_HI)));
        let r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(LN2_LO)));
        let r2 = _mm256_mul_ps(r, r);
        let mut p = _mm256_set1_ps(EXP_P0);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_P1));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_P2));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_P3));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_P4));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_P5));
        let y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(p, r2), r), _mm256_set1_ps(1.0));
        let ni = _mm256_cvtps_epi32(n);
        let two_n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            ni,
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, two_n)
    }

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    ///
    /// Eight f32s per iteration: integer round-to-nearest-even, shift,
    /// then an unsigned dword→word pack. `packus` works per 128-bit
    /// lane, so a qword permute restores element order before the store.
    #[target_feature(enable = "avx2")]
    pub unsafe fn narrow_bf16(dst: &mut [u16], src: &[f32]) {
        let n = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let bias = _mm256_set1_epi32(0x7FFF);
        let one = _mm256_set1_epi32(1);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_castps_si256(_mm256_loadu_ps(sp.add(i)));
            let lsb = _mm256_and_si256(_mm256_srli_epi32::<16>(v), one);
            let r = _mm256_add_epi32(v, _mm256_add_epi32(bias, lsb));
            // Each dword now holds the target word in [0, 0xFFFF]:
            // packus never saturates here.
            let hi = _mm256_srli_epi32::<16>(r);
            let packed = _mm256_packus_epi32(hi, hi);
            let ordered = _mm256_permute4x64_epi64::<0b00_00_10_00>(packed);
            _mm_storeu_si128(dp.add(i) as *mut _, _mm256_castsi256_si128(ordered));
            i += 8;
        }
        while i < n {
            dst[i] = super::narrow_bf16_one(src[i]);
            i += 1;
        }
    }

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn widen_bf16(dst: &mut [f32], src: &[u16]) {
        let n = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let q = _mm_loadu_si128(sp.add(i) as *const _);
            let wide = _mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(q));
            _mm256_storeu_ps(dp.add(i), _mm256_castsi256_ps(wide));
            i += 8;
        }
        while i < n {
            dst[i] = super::widen_bf16_one(src[i]);
            i += 1;
        }
    }

    /// # Safety
    /// Requires AVX2 (callers check [`super::supported`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_exp_lanes(lanes: &mut [f32; 8], x: &[f32], m: f32) {
        let n = x.len();
        let xp = x.as_ptr();
        let mv = _mm256_set1_ps(m);
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mv);
            acc = _mm256_add_ps(acc, exp8(v));
            i += 8;
        }
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        while i < n {
            lanes[i % 8] += super::exp_approx(x[i] - m);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, seed: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) * 0.73 + seed).sin() * 2.0)
            .collect()
    }

    #[test]
    fn force_scalar_parsing() {
        assert!(!force_scalar_requested(None));
        assert!(!force_scalar_requested(Some("")));
        assert!(!force_scalar_requested(Some("0")));
        assert!(!force_scalar_requested(Some("false")));
        assert!(!force_scalar_requested(Some("FALSE")));
        assert!(force_scalar_requested(Some("1")));
        assert!(force_scalar_requested(Some("yes")));
    }

    #[test]
    fn scalar_always_supported_and_listed_first() {
        assert!(supported(Level::Scalar));
        assert_eq!(supported_levels()[0], Level::Scalar);
    }

    #[test]
    fn with_level_restores_after_panic() {
        let before = active();
        let result = std::panic::catch_unwind(|| {
            with_level(Level::Scalar, || {
                assert_eq!(active(), Level::Scalar);
                panic!("boom");
            })
        });
        assert!(result.is_err());
        assert_eq!(active(), before);
    }

    #[test]
    fn saxpy_levels_bit_identical() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 31, 33, 100] {
            let x = data(n, 0.1);
            let y0 = data(n, 2.5);
            let mut reference = y0.clone();
            with_level(Level::Scalar, || saxpy(&mut reference, 0.37, &x));
            for &level in &supported_levels() {
                let mut y = y0.clone();
                with_level(level, || saxpy(&mut y, 0.37, &x));
                for (a, b) in y.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} n={n}", level.name());
                }
            }
        }
    }

    #[test]
    fn add_and_scale_levels_bit_identical() {
        for n in [0usize, 1, 4, 7, 8, 9, 33] {
            let x = data(n, 1.0);
            let y0 = data(n, -0.5);
            let mut add_ref = y0.clone();
            let mut scale_ref = y0.clone();
            with_level(Level::Scalar, || {
                add_assign(&mut add_ref, &x);
                scale(&mut scale_ref, -1.25);
            });
            for &level in &supported_levels() {
                let mut ya = y0.clone();
                let mut ys = y0.clone();
                with_level(level, || {
                    add_assign(&mut ya, &x);
                    scale(&mut ys, -1.25);
                });
                assert!(ya
                    .iter()
                    .zip(&add_ref)
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
                assert!(ys
                    .iter()
                    .zip(&scale_ref)
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        }
    }

    #[test]
    fn max_matches_fold_on_finite() {
        for n in [0usize, 1, 5, 8, 9, 40] {
            let x = data(n, 3.0);
            let expect = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            for &level in &supported_levels() {
                let got = with_level(level, || max(&x));
                assert_eq!(got.to_bits(), expect.to_bits(), "{} n={n}", level.name());
            }
        }
    }

    #[test]
    fn colmajor_levels_bit_identical() {
        for (m, n) in [
            (0usize, 5usize),
            (3, 0),
            (1, 1),
            (5, 7),
            (4, 16),
            (7, 32),
            (6, 37),
            (9, 70),
        ] {
            let x = data(m, 0.2);
            let wt = data(m * n, 1.7);
            let mut reference = data(n, -1.0);
            with_level(Level::Scalar, || colmajor_gemv_acc(&mut reference, &x, &wt));
            for &level in &supported_levels() {
                let mut y = data(n, -1.0);
                with_level(level, || colmajor_gemv_acc(&mut y, &x, &wt));
                for (a, b) in y.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} {m}x{n}", level.name());
                }
            }
        }
    }

    #[test]
    fn colmajor_matches_per_output_dot() {
        // The contract: y[j] += the scalar ascending-index dot.
        let m = 5;
        let n = 9;
        let x = data(m, 0.4);
        let wt = data(m * n, 2.2);
        let mut y = vec![0.0f32; n];
        colmajor_gemv_acc(&mut y, &x, &wt);
        for (j, &yj) in y.iter().enumerate() {
            let mut acc = 0.0f32;
            for (k, &xv) in x.iter().enumerate() {
                acc += xv * wt[k * n + j];
            }
            assert_eq!(yj.to_bits(), acc.to_bits(), "j={j}");
        }
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn colmajor_shape_mismatch_panics() {
        let mut y = [0.0f32; 2];
        colmajor_gemv_acc(&mut y, &[1.0], &[1.0; 3]);
    }

    #[test]
    fn exp_approx_accurate_on_lse_domain() {
        for i in 0..2000 {
            let x = -87.0 + (i as f32) * 0.04; // [-87, -7]
            let exact = x.exp();
            let got = exp_approx(x);
            let rel = ((got - exact) / exact.max(f32::MIN_POSITIVE)).abs();
            assert!(
                rel < 3e-6,
                "x={x}: got {got:e}, exact {exact:e}, rel {rel:e}"
            );
        }
        assert_eq!(exp_approx(0.0), 1.0);
        assert!(exp_approx(-1000.0) > 0.0); // clamped, not flushed to zero
    }

    #[test]
    fn relaxed_kernels_deterministic_across_levels() {
        for n in [0usize, 1, 7, 8, 9, 64, 150, 257] {
            let a = data(n, 0.3);
            let b = data(n, 1.1);
            let dot_ref = with_level(Level::Scalar, || dot_relaxed(&a, &b));
            let m = scalar::max(&a);
            let se_ref = with_level(Level::Scalar, || sum_exp_relaxed(&a, m));
            for &level in &supported_levels() {
                let dot = with_level(level, || dot_relaxed(&a, &b));
                let se = with_level(level, || sum_exp_relaxed(&a, m));
                assert_eq!(dot.to_bits(), dot_ref.to_bits(), "{} n={n}", level.name());
                assert_eq!(se.to_bits(), se_ref.to_bits(), "{} n={n}", level.name());
            }
        }
    }

    #[test]
    fn bf16_round_trip_error_bounded_and_exact_on_bf16_values() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 31, 33, 100] {
            let x = data(n, 0.6);
            let mut q = vec![0u16; n];
            let mut back = vec![0.0f32; n];
            narrow_bf16(&mut q, &x);
            widen_bf16(&mut back, &q);
            for (&orig, &rt) in x.iter().zip(&back) {
                // Round-to-nearest on 8 explicit mantissa bits: relative
                // error at most 2^-8.
                assert!(
                    (rt - orig).abs() <= orig.abs() * (1.0 / 256.0) + f32::MIN_POSITIVE,
                    "orig {orig} round-tripped to {rt}"
                );
            }
            // Values already representable in bf16 survive unchanged.
            let mut q2 = vec![0u16; n];
            narrow_bf16(&mut q2, &back);
            assert_eq!(q, q2);
        }
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-9 sits exactly between bf16(1.0) and the next bf16
        // value; ties go to the even mantissa (1.0).
        let tie = f32::from_bits(0x3F80_8000);
        assert_eq!(narrow_bf16_one(tie), 0x3F80);
        // One ulp above the tie rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(narrow_bf16_one(above), 0x3F81);
        // The next tie (odd kept mantissa) rounds up to even.
        let tie_odd = f32::from_bits(0x3F81_8000);
        assert_eq!(narrow_bf16_one(tie_odd), 0x3F82);
        // Specials pass through.
        assert_eq!(
            widen_bf16_one(narrow_bf16_one(f32::INFINITY)),
            f32::INFINITY
        );
        assert!(widen_bf16_one(narrow_bf16_one(f32::NAN)).is_nan());
        assert_eq!(narrow_bf16_one(0.0), 0);
        assert_eq!(narrow_bf16_one(-0.0), 0x8000);
    }

    #[test]
    fn bf16_levels_bit_identical() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 17, 33, 100] {
            let x = data(n, 1.4);
            let mut q_ref = vec![0u16; n];
            with_level(Level::Scalar, || narrow_bf16(&mut q_ref, &x));
            let mut w_ref = vec![0.0f32; n];
            with_level(Level::Scalar, || widen_bf16(&mut w_ref, &q_ref));
            for &level in &supported_levels() {
                let mut q = vec![0u16; n];
                let mut w = vec![0.0f32; n];
                with_level(level, || {
                    narrow_bf16(&mut q, &x);
                    widen_bf16(&mut w, &q_ref);
                });
                assert_eq!(q, q_ref, "narrow {} n={n}", level.name());
                assert!(
                    w.iter()
                        .zip(&w_ref)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "widen {} n={n}",
                    level.name()
                );
            }
        }
    }

    #[test]
    fn relaxed_dot_close_to_exact() {
        let n = 200;
        let a = data(n, 0.9);
        let b = data(n, -0.4);
        let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let relaxed = dot_relaxed(&a, &b);
        assert!((relaxed - exact).abs() <= 1e-3 * exact.abs().max(1.0));
        assert_eq!(
            scalar::dot_relaxed(&a, &b).to_bits(),
            with_level(Level::Scalar, || dot_relaxed(&a, &b)).to_bits()
        );
    }
}
