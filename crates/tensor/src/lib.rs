#![warn(missing_docs)]

//! # ncl-tensor
//!
//! Dense `f32` linear-algebra substrate for the NCL reproduction of
//! *Fine-grained Concept Linking using Neural Networks in Healthcare*
//! (Dai et al., SIGMOD 2018).
//!
//! The paper's original system implements its neural networks in a custom
//! C++ library; this crate is the Rust equivalent. It provides:
//!
//! * [`Vector`] and [`Matrix`] — row-major dense containers with the BLAS-1/2/3
//!   kernels (`axpy`, `dot`, `gemv`, `gemm`, outer products) that LSTM
//!   forward/backward passes need,
//! * [`ops`] — numerically careful activations (`sigmoid`, `tanh`,
//!   `softmax`, `log_softmax`) and their derivatives,
//! * [`simd`] — runtime-dispatched AVX2/SSE2/scalar kernels behind the
//!   hot `Matrix`/`Vector` paths, bit-identical to the scalar reference
//!   (vectorised across outputs, never across a reduction),
//! * [`init`] — Xavier/uniform parameter initialisation,
//! * [`pca`] — principal component analysis by power iteration, used to
//!   regenerate the representation-shift snapshots of Figure 10,
//! * [`stats`] — mean/std-dev/percentile helpers used by the feedback
//!   controller (Appendix A) and the experiment harness.
//!
//! Everything is deliberately dependency-light (only `rand`) and fully
//! deterministic given a seeded RNG, so experiments are reproducible.

pub mod init;
pub mod matrix;
pub mod ops;
pub mod pca;
pub mod pool;
pub mod simd;
pub mod stats;
pub mod vector;
pub mod wire;

pub use matrix::Matrix;
pub use vector::Vector;
pub use wire::{Reader, Wire, WireError};

/// Tolerance used throughout the crate's internal assertions.
pub const EPS: f32 = 1e-6;
