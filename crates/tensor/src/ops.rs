//! Numerically careful activation functions and their derivatives.
//!
//! These are exactly the nonlinearities appearing in the COM-AID equations
//! of Section 4.1: the sigmoid `δ(·)` for the LSTM gates, `tanh(·)` for the
//! cell candidate and the composite layer (Eq. 8), and `softmax(·)` for the
//! attention weights (Eq. 5, 7) and the output distribution (Eq. 9).

use crate::vector::Vector;

/// Logistic sigmoid `δ(x) = 1 / (1 + e^{-x})`, evaluated in a form that
/// never exponentiates a large positive argument.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid expressed through its output:
/// `δ'(x) = y (1 - y)` where `y = δ(x)`.
#[inline]
pub fn sigmoid_grad_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Derivative of `tanh` expressed through its output: `1 - y²`.
#[inline]
pub fn tanh_grad_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Applies the sigmoid element-wise, in place.
pub fn sigmoid_inplace(v: &mut Vector) {
    for x in v.as_mut_slice() {
        *x = sigmoid(*x);
    }
}

/// Applies `tanh` element-wise, in place.
pub fn tanh_inplace(v: &mut Vector) {
    for x in v.as_mut_slice() {
        *x = x.tanh();
    }
}

/// Returns `tanh` applied element-wise.
pub fn tanh_vec(v: &Vector) -> Vector {
    let mut out = v.clone();
    tanh_inplace(&mut out);
    out
}

/// Max-shifted softmax: `softmax(x)_i = e^{x_i - m} / Σ_j e^{x_j - m}`.
///
/// The subtraction of the maximum makes the computation immune to overflow
/// for any finite input. Returns the uniform distribution for an empty or
/// degenerate input (all `-inf`).
pub fn softmax(x: &Vector) -> Vector {
    let n = x.len();
    if n == 0 {
        return Vector::zeros(0);
    }
    let m = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !m.is_finite() {
        return Vector::full(n, 1.0 / n as f32);
    }
    let mut out = Vec::with_capacity(n);
    let mut sum = 0.0f32;
    for &v in x.iter() {
        let e = (v - m).exp();
        sum += e;
        out.push(e);
    }
    let inv = 1.0 / sum;
    for o in &mut out {
        *o *= inv;
    }
    Vector::from_vec(out)
}

/// Log-softmax, computed with the log-sum-exp trick. Needed for the loss
/// `−log p(q|c; Θ)` of Eq. 10 without floating-point underflow — the same
/// concern Appendix A raises when it defines `Loss = −log p(q|c; Θ)`.
pub fn log_softmax(x: &Vector) -> Vector {
    let n = x.len();
    if n == 0 {
        return Vector::zeros(0);
    }
    let m = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let lse = m + x.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
    Vector::from_vec(x.iter().map(|&v| v - lse).collect())
}

/// The `idx`-th entry of [`log_softmax`] without materialising the output
/// vector — the scoring kernel of Eq. 3, where only `log p(w_t | ·)` of
/// the *target* word is ever read while the full `|V|`-vector would be
/// thrown away.
///
/// Two passes over `x` (max, then exp-sum), no allocation. The pass
/// structure and accumulation order match [`log_softmax`] exactly, so the
/// result is bit-identical to `log_softmax(x)[idx]` — the serving cache's
/// "same score to the last bit" guarantee rests on this.
///
/// # Panics
/// Panics if `idx` is out of range.
pub fn log_softmax_at(x: &Vector, idx: usize) -> f32 {
    log_softmax_at_slice(x.as_slice(), idx)
}

/// [`log_softmax_at`] over a raw slice — for callers holding a row of a
/// batched logits [`Matrix`](crate::Matrix) rather than a [`Vector`].
///
/// # Panics
/// Panics if `idx` is out of range.
pub fn log_softmax_at_slice(x: &[f32], idx: usize) -> f32 {
    assert!(idx < x.len(), "log_softmax_at: index out of range");
    x[idx] - log_sum_exp_slice(x)
}

/// The max-shifted log-sum-exp `m + ln Σ exp(x_i − m)` of a slice, with
/// the same pass structure and accumulation order as [`log_softmax`], so
/// `x[i] - log_sum_exp_slice(x)` is bit-identical to `log_softmax(x)[i]`.
/// Callers that score the same logits vector repeatedly (the serving
/// cache's precomputed first decoder step) store this denominator once.
///
/// The max pass runs through [`crate::simd::max`]: the maximum of finite
/// floats is association-independent, so vectorising it cannot change the
/// shift `m` (for a NaN input the sum below is NaN under every shift),
/// and the sequential exp-sum is untouched — result bits are unchanged
/// at every dispatch level.
pub fn log_sum_exp_slice(x: &[f32]) -> f32 {
    let m = crate::simd::max(x);
    m + x.iter().map(|&v| (v - m).exp()).sum::<f32>().ln()
}

/// Epsilon-relaxed [`log_sum_exp_slice`]: same max shift, but the
/// exp-sum is the fast-math kernel [`crate::simd::sum_exp_relaxed`]
/// (fixed 8-lane partial sums, polynomial exp). Deterministic across
/// dispatch levels but **not** bit-equal to the exact kernel (relative
/// error ≈ 1e-6); only the serving path behind `LinkerConfig::fast_math`
/// calls it. Degenerate inputs (empty, non-finite max) defer to the
/// exact kernel so edge-case behaviour cannot diverge.
pub fn log_sum_exp_slice_relaxed(x: &[f32]) -> f32 {
    let m = crate::simd::max(x);
    if !m.is_finite() {
        return log_sum_exp_slice(x);
    }
    m + crate::simd::sum_exp_relaxed(x, m).ln()
}

/// Epsilon-relaxed [`log_softmax_at_slice`], built on
/// [`log_sum_exp_slice_relaxed`] — the fast-math serving score.
///
/// # Panics
/// Panics if `idx` is out of range.
pub fn log_softmax_at_slice_relaxed(x: &[f32], idx: usize) -> f32 {
    assert!(idx < x.len(), "log_softmax_at: index out of range");
    x[idx] - log_sum_exp_slice_relaxed(x)
}

/// Backward pass through a softmax: given the output `y = softmax(x)` and
/// the upstream gradient `dy`, returns `dx = (diag(y) − y yᵀ) dy`, i.e.
/// `dx_i = y_i (dy_i − Σ_j y_j dy_j)`.
pub fn softmax_backward(y: &Vector, dy: &Vector) -> Vector {
    assert_eq!(y.len(), dy.len(), "softmax_backward: dimension mismatch");
    let s = y.dot(dy);
    Vector::from_vec(
        y.iter()
            .zip(dy.iter())
            .map(|(&yi, &dyi)| yi * (dyi - s))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigmoid_midpoint_and_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn sigmoid_symmetry() {
        for x in [-3.0f32, -0.5, 0.7, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_grad_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, 0.0, 1.5] {
            let fd = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            let an = sigmoid_grad_from_output(sigmoid(x));
            assert!((fd - an).abs() < 1e-3, "x={x}: fd={fd}, an={an}");
        }
    }

    #[test]
    fn tanh_grad_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, 0.0, 1.5] {
            let fd = ((x + h).tanh() - (x - h).tanh()) / (2.0 * h);
            let an = tanh_grad_from_output(x.tanh());
            assert!((fd - an).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let x = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let y = softmax(&x);
        assert!((y.sum() - 1.0).abs() < 1e-6);
        assert!(y[2] > y[1] && y[1] > y[0]);
    }

    #[test]
    fn softmax_overflow_safe() {
        let x = Vector::from_slice(&[1000.0, 1000.0]);
        let y = softmax(&x);
        assert!(y.is_finite());
        assert!((y[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty() {
        assert_eq!(softmax(&Vector::zeros(0)).len(), 0);
    }

    #[test]
    fn log_softmax_consistency() {
        let x = Vector::from_slice(&[0.1, -2.0, 3.5, 0.0]);
        let s = softmax(&x);
        let ls = log_softmax(&x);
        for i in 0..x.len() {
            assert!((s[i].ln() - ls[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_at_bit_identical_to_full() {
        // Not approximate: the serving cache asserts bit-identical scores,
        // so the scalar kernel must reproduce the vector kernel exactly.
        let x = Vector::from_slice(&[0.1, -2.0, 3.5, 0.0, 17.25, -0.875]);
        let full = log_softmax(&x);
        for i in 0..x.len() {
            assert_eq!(log_softmax_at(&x, i).to_bits(), full[i].to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn log_softmax_at_out_of_range_panics() {
        let _ = log_softmax_at(&Vector::from_slice(&[0.0, 1.0]), 2);
    }

    #[test]
    fn relaxed_lse_close_to_exact_and_degenerate_safe() {
        let x: Vec<f32> = (0..300).map(|i| ((i as f32) * 0.11).sin() * 8.0).collect();
        let exact = log_sum_exp_slice(&x);
        let relaxed = log_sum_exp_slice_relaxed(&x);
        assert!((exact - relaxed).abs() < 1e-4 * exact.abs().max(1.0));
        for i in 0..x.len() {
            let a = log_softmax_at_slice(&x, i);
            let b = log_softmax_at_slice_relaxed(&x, i);
            assert!((a - b).abs() < 2e-4, "i={i}: exact {a}, relaxed {b}");
        }
        // Degenerate inputs defer to the exact kernel bit-for-bit.
        let empty: [f32; 0] = [];
        assert_eq!(
            log_sum_exp_slice_relaxed(&empty).to_bits(),
            log_sum_exp_slice(&empty).to_bits()
        );
        let inf = [1.0f32, f32::INFINITY];
        assert_eq!(
            log_sum_exp_slice_relaxed(&inf).to_bits(),
            log_sum_exp_slice(&inf).to_bits()
        );
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = Vector::from_slice(&[0.2, -0.4, 1.0]);
        let dy = Vector::from_slice(&[0.3, -0.1, 0.7]);
        let an = softmax_backward(&softmax(&x), &dy);
        let h = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fp = softmax(&xp).dot(&dy);
            let fm = softmax(&xm).dot(&dy);
            let fd = (fp - fm) / (2.0 * h);
            assert!((fd - an[i]).abs() < 1e-3, "i={i}: fd={fd}, an={}", an[i]);
        }
    }

    proptest! {
        #[test]
        fn softmax_simplex(x in proptest::collection::vec(-20.0f32..20.0, 1..24)) {
            let y = softmax(&Vector::from_slice(&x));
            prop_assert!((y.sum() - 1.0).abs() < 1e-4);
            prop_assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn softmax_shift_invariance(
            x in proptest::collection::vec(-5.0f32..5.0, 2..16),
            c in -10.0f32..10.0,
        ) {
            let a = softmax(&Vector::from_slice(&x));
            let shifted: Vec<f32> = x.iter().map(|v| v + c).collect();
            let b = softmax(&Vector::from_slice(&shifted));
            for i in 0..x.len() {
                prop_assert!((a[i] - b[i]).abs() < 1e-4);
            }
        }

        #[test]
        fn log_softmax_nonpositive(x in proptest::collection::vec(-10.0f32..10.0, 1..16)) {
            let ls = log_softmax(&Vector::from_slice(&x));
            prop_assert!(ls.iter().all(|&v| v <= 1e-5));
        }

        #[test]
        fn log_softmax_at_agrees_everywhere(
            x in proptest::collection::vec(-30.0f32..30.0, 1..24),
        ) {
            let v = Vector::from_slice(&x);
            let full = log_softmax(&v);
            for i in 0..x.len() {
                prop_assert_eq!(log_softmax_at(&v, i).to_bits(), full[i].to_bits());
            }
        }
    }
}
