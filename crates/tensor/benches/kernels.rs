//! Micro-benchmarks for the serving-path kernels added alongside the
//! frozen concept cache: the blocked `gemm_nt` scoring product and the
//! allocation-free scalar `log_softmax_at`, each against the naive
//! formulation it replaces.
//!
//! Shapes mirror online scoring at paper scale: `k ≤ 50` candidate
//! decoder states of width `d = 150` against a `|V| ≈ 4000`-row output
//! matrix.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ncl_tensor::ops::{log_softmax, log_softmax_at};
use ncl_tensor::{Matrix, Vector};

fn filled(rows: usize, cols: usize, phase: f32) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| ((i as f32) * 0.37 + phase).sin())
            .collect(),
    )
}

fn bench_gemm_nt(c: &mut Criterion) {
    let d = 150;
    let vocab = 4000;
    let w = filled(vocab, d, 0.0);
    let mut group = c.benchmark_group("output_logits");
    group.sample_size(20);
    for &k in &[1usize, 10, 50] {
        let s = filled(k, d, 1.0);
        group.bench_with_input(BenchmarkId::new("gemv_per_row", k), &s, |b, s| {
            b.iter(|| {
                for i in 0..s.rows() {
                    black_box(w.gemv(&s.row_vector(i)));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("gemm_nt_blocked", k), &s, |b, s| {
            b.iter(|| black_box(s.gemm_nt(&w)))
        });
    }
    group.finish();
}

fn bench_log_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("target_log_prob");
    group.sample_size(20);
    for &n in &[512usize, 4096] {
        let logits = Vector::from_vec((0..n).map(|i| ((i as f32) * 0.11).cos()).collect());
        group.bench_with_input(
            BenchmarkId::new("full_log_softmax", n),
            &logits,
            |b, logits| b.iter(|| black_box(log_softmax(logits)[n / 3])),
        );
        group.bench_with_input(
            BenchmarkId::new("log_softmax_at", n),
            &logits,
            |b, logits| b.iter(|| black_box(log_softmax_at(logits, n / 3))),
        );
    }
    group.finish();
}

criterion_group!(kernels, bench_gemm_nt, bench_log_softmax);
criterion_main!(kernels);
