//! UMLS-style alias generation.
//!
//! In the paper the labeled training pairs `⟨d^c, d_j^c⟩` come from the
//! UMLS, where "a concept may have different descriptions in different
//! standards; take the concept R10.0 as an example, it has the
//! descriptions 'acute abdomen', 'acute abdominal syndrome', and 'pain;
//! abdomen'" (§3). We synthesise the same three phenomena per concept:
//! synonym substitution, word reordering/inversion, and qualifier
//! dropping/extension.

use crate::lexicon::{is_droppable, synonyms_of};
use ncl_text::tokenize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates up to `max_aliases` distinct aliases of `canonical`.
///
/// Deterministic given the seed. The canonical form itself is never
/// returned (footnote 9: identity pairs do not contribute to training).
pub fn aliases_for(canonical: &str, max_aliases: usize, seed: u64) -> Vec<String> {
    let tokens = tokenize(canonical);
    if tokens.is_empty() || max_aliases == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<String> = Vec::new();
    let push = |alias: Vec<String>, out: &mut Vec<String>| {
        let joined = alias.join(" ");
        if !joined.is_empty() && joined != canonical && !out.contains(&joined) {
            out.push(joined);
        }
    };

    // 1. Single-word synonym substitutions, every position.
    for (i, tok) in tokens.iter().enumerate() {
        if let Some(syns) = synonyms_of(tok) {
            for syn in syns {
                let mut alias = tokens.clone();
                // Synonyms may be multi-word in principle; tokenize them.
                alias.splice(i..=i, tokenize(syn));
                push(alias, &mut out);
            }
        }
    }

    // 2. Inversion around "of": "A of B ..." → "B A" (the "pain; abdomen"
    //    pattern with the separator normalised away).
    if let Some(of_pos) = tokens.iter().position(|t| t == "of") {
        if of_pos > 0 && of_pos + 1 < tokens.len() {
            let mut alias: Vec<String> = tokens[of_pos + 1..].to_vec();
            alias.extend_from_slice(&tokens[..of_pos]);
            push(alias, &mut out);
        }
    }

    // 3. Qualifier drop: remove droppable words.
    let dropped: Vec<String> = tokens
        .iter()
        .filter(|t| !is_droppable(t))
        .cloned()
        .collect();
    if dropped.len() < tokens.len() && !dropped.is_empty() {
        push(dropped, &mut out);
    }

    // 4. Qualifier rotation: move the last word to the front (UMLS's
    //    "anemia, scorbutic" convention, normalised).
    if tokens.len() >= 2 {
        let mut alias = vec![tokens[tokens.len() - 1].clone()];
        alias.extend_from_slice(&tokens[..tokens.len() - 1]);
        push(alias, &mut out);
    }

    // 5. Combined: synonym substitution on the dropped form.
    let core: Vec<String> = tokens
        .iter()
        .filter(|t| !is_droppable(t))
        .cloned()
        .collect();
    for (i, tok) in core.iter().enumerate() {
        if let Some(syns) = synonyms_of(tok) {
            if let Some(syn) = syns.first() {
                let mut alias = core.clone();
                alias.splice(i..=i, tokenize(syn));
                push(alias, &mut out);
            }
        }
    }

    out.shuffle(&mut rng);
    // Keep a deterministic-but-varied subset when more were generated
    // than requested.
    let keep = rng.gen_range(max_aliases.min(2)..=max_aliases);
    out.truncate(keep);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_nonempty_for_multiword() {
        let a = aliases_for("malignant neoplasm of colon unspecified", 5, 1);
        assert!(!a.is_empty());
        assert!(a.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn never_returns_canonical() {
        for seed in 0..10 {
            let a = aliases_for("iron deficiency anemia", 8, seed);
            assert!(a.iter().all(|s| s != "iron deficiency anemia"));
        }
    }

    #[test]
    fn aliases_are_distinct() {
        let a = aliases_for("chronic kidney disease stage 5", 8, 3);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(a.len(), dedup.len());
    }

    #[test]
    fn inversion_applied_to_of_phrases() {
        // With a generous budget the inversion variant must appear.
        let a = aliases_for("ulcer of stomach", 20, 2);
        assert!(
            a.iter().any(|s| s.starts_with("stomach")),
            "no inversion in {a:?}"
        );
    }

    #[test]
    fn synonym_substitution_present() {
        let a = aliases_for("kidney failure acute", 20, 5);
        assert!(
            a.iter()
                .any(|s| s.contains("renal") || s.contains("insufficiency")),
            "no synonym alias in {a:?}"
        );
    }

    #[test]
    fn respects_max() {
        let a = aliases_for("malignant neoplasm of kidney unspecified", 2, 9);
        assert!(a.len() <= 2);
    }

    #[test]
    fn empty_input_or_zero_budget() {
        assert!(aliases_for("", 5, 1).is_empty());
        assert!(aliases_for("anemia", 0, 1).is_empty());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            aliases_for("fracture of femur severe", 5, 42),
            aliases_for("fracture of femur severe", 5, 42)
        );
    }
}
