#![warn(missing_docs)]

//! # ncl-datagen
//!
//! Synthetic clinical datasets for the NCL reproduction of *Fine-grained
//! Concept Linking using Neural Networks in Healthcare* (Dai et al.,
//! SIGMOD 2018).
//!
//! The paper evaluates on two gated datasets — `hospital-x` (860,080 NUH
//! diagnosis descriptions against ICD-10-CM) and `MIMIC-III` (58,976
//! diagnoses against ICD-9-CM) — and on the UMLS alias inventory, none of
//! which can be redistributed. Per the substitution policy in `DESIGN.md`,
//! this crate generates equivalents that exercise identical code paths:
//!
//! * [`lexicon`] — medical term banks: body sites with Latin/Greek
//!   synonyms, disease patterns, qualifiers, and the abbreviation
//!   dictionary clinicians actually use (`ckd`, `dm`, `htn`, `fx`, …),
//! * [`ontology_gen`] — ICD-style tree ontologies (chapters → categories →
//!   dotted subcategories) where sibling leaves differ by a qualifier,
//!   reproducing the "minor concept meaning difference" challenge (§1),
//! * [`alias_gen`] — UMLS-style aliases per concept (synonym swap, word
//!   inversion "pain; abdomen", qualifier drop),
//! * [`query_gen`] — labeled queries under controlled corruption classes
//!   (abbreviation, acronym, synonym, simplification, typo, word drop),
//!   matching the paper's purposive query design (§6.1: 84 purposely
//!   selected queries per group "to cover different cases (e.g.,
//!   abbreviation, synonym, acronym, and simplification)"),
//! * [`dataset`] — the two dataset profiles (`HospitalX`, `MimicIii`) with
//!   labeled pairs, unlabeled corpus and grouped evaluation queries,
//! * [`note`] — multi-mention clinical notes: labeled snippets stitched
//!   into documents with narrative filler and gold span annotations,
//!   for the document-level linking workload.
//!
//! Everything is deterministic given a seed.

pub mod alias_gen;
pub mod dataset;
pub mod lexicon;
pub mod note;
pub mod ontology_gen;
pub mod query_gen;

pub use dataset::{Dataset, DatasetConfig, DatasetProfile, LabeledQuery};
pub use note::{GoldSpan, Note, NoteConfig, NoteProfile};
pub use query_gen::CorruptionClass;
