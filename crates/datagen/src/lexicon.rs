//! Medical term banks.
//!
//! These banks drive both ontology generation (canonical descriptions of
//! the style "malignant neoplasm of colon, unspecified") and workload
//! corruption (synonym swaps like *kidney* → *renal*, dictionary
//! abbreviations like *chronic kidney disease* → *ckd*). The entries are
//! chosen so the paper's running examples — `ckd 5`, `dm 1 with
//! neuropaty`, `chr iron deficiency anemia`, `adenocarcinoma of colon` —
//! are all expressible.

/// Anatomical sites. The second element marks whether the organ is paired
/// (eligible for left/right leaf qualifiers).
pub const SITES: &[(&str, bool)] = &[
    ("kidney", true),
    ("heart", false),
    ("liver", false),
    ("lung", true),
    ("stomach", false),
    ("colon", false),
    ("breast", true),
    ("skin", false),
    ("pancreas", false),
    ("bladder", false),
    ("brain", false),
    ("spine", false),
    ("thyroid", false),
    ("prostate", false),
    ("testis", true),
    ("ovary", true),
    ("uterus", false),
    ("esophagus", false),
    ("rectum", false),
    ("bowel", false),
    ("eye", true),
    ("ear", true),
    ("mouth", false),
    ("nose", false),
    ("shoulder", true),
    ("hip", true),
    ("knee", true),
    ("wrist", true),
    ("femur", true),
    ("abdomen", false),
];

/// Disease families: a canonical pattern `"{family} of {site}"` or
/// `"{site} {family}"`, selected by `site_first`.
pub const FAMILIES: &[(&str, bool)] = &[
    ("malignant neoplasm", false),
    ("benign neoplasm", false),
    ("acute infection", false),
    ("chronic inflammation", false),
    ("fracture", false),
    ("ulcer", false),
    ("abscess", false),
    ("hemorrhage", false),
    ("cyst", false),
    ("stenosis", false),
    ("congenital malformation", false),
    ("degenerative disease", false),
    ("injury", false),
    ("failure", true),
    ("stone", false),
    ("chronic disease", true),
];

/// Nutrients for the "`{nutrient}` deficiency anemia" family (the D50–D53
/// block of the paper's Figure 1).
pub const NUTRIENTS: &[&str] = &[
    "iron",
    "protein",
    "folate",
    "vitamin b12",
    "vitamin c",
    "zinc",
    "copper",
];

/// Word-level synonyms (common term → technical/alternative terms).
/// Substituting any of these preserves the referred concept — this is the
/// "synonym" word-discrepancy class of §1.
pub const WORD_SYNONYMS: &[(&str, &[&str])] = &[
    ("kidney", &["renal"]),
    ("heart", &["cardiac"]),
    ("liver", &["hepatic"]),
    ("lung", &["pulmonary"]),
    ("stomach", &["gastric"]),
    ("brain", &["cerebral"]),
    ("skin", &["cutaneous"]),
    ("bladder", &["vesical"]),
    ("bowel", &["intestine"]),
    ("eye", &["ocular"]),
    ("mouth", &["oral"]),
    ("nose", &["nasal"]),
    ("neoplasm", &["tumor", "growth"]),
    ("malignant", &["cancerous"]),
    ("failure", &["insufficiency"]),
    ("hemorrhage", &["bleeding"]),
    ("stone", &["calculus"]),
    ("pain", &["ache"]),
    ("swelling", &["edema"]),
    ("disease", &["disorder", "condition"]),
    ("unspecified", &["nos"]),
    ("fracture", &["break"]),
    ("ulcer", &["ulceration"]),
    ("deficiency", &["lack"]),
    ("anemia", &["anaemia"]),
    ("injury", &["trauma"]),
    ("abdomen", &["belly"]),
    ("infection", &["sepsis"]),
    ("stenosis", &["narrowing"]),
    ("malformation", &["anomaly"]),
];

/// Dictionary abbreviations: multi-word phrase (or word) → clinical short
/// form. Applied left-to-right on the token stream; phrases are matched
/// as token subsequences.
pub const PHRASE_ABBREVS: &[(&str, &str)] = &[
    ("chronic kidney disease", "ckd"),
    ("chronic renal disease", "crd"),
    ("congestive heart failure", "chf"),
    ("end stage renal disease", "esrd"),
    ("urinary tract infection", "uti"),
    ("myocardial infarction", "mi"),
    ("coronary artery disease", "cad"),
    ("deep vein thrombosis", "dvt"),
    ("malignant neoplasm", "ca"),
    ("vitamin b12", "b12"),
    ("vitamin c", "vit c"),
    ("iron", "fe"),
    ("fracture", "fx"),
    ("history", "hx"),
    ("secondary", "2"),
    ("deficiency", "def"),
    ("with", "w"),
    ("without", "wo"),
    ("chronic", "chr"),
    ("acute", "ac"),
    ("bilateral", "bilat"),
    ("left", "lt"),
    ("right", "rt"),
];

/// Returns the synonyms of a word, if any. The table is searched in both
/// directions (`kidney` → `renal` and `renal` → `kidney`), since clinical
/// text freely swaps common and technical forms.
pub fn synonyms_of(word: &str) -> Option<Vec<&'static str>> {
    if let Some((w, syns)) = WORD_SYNONYMS.iter().find(|(w, _)| *w == word) {
        let _ = w;
        return Some(syns.to_vec());
    }
    // Reverse direction: find the head word whose synonym list contains
    // this word.
    WORD_SYNONYMS
        .iter()
        .find(|(_, syns)| syns.contains(&word))
        .map(|(w, _)| vec![*w])
}

/// Causes used to elongate some category descriptions, mirroring the
/// compound descriptions of real ICD-10-CM codes ("hypertensive chronic
/// kidney disease … with chronic kidney disease stage v or end stage
/// renal disease").
pub const CAUSES: &[&str] = &[
    "due to infection",
    "due to trauma",
    "due to radiation",
    "following medical procedure",
    "of unknown cause",
];

/// Returns the abbreviation of a phrase, if in the dictionary.
pub fn abbreviation_of(phrase: &str) -> Option<&'static str> {
    PHRASE_ABBREVS
        .iter()
        .find(|(p, _)| *p == phrase)
        .map(|(_, a)| *a)
}

/// Words that can be dropped without changing the referred concept
/// (function words and vacuous qualifiers) — the "simplification"
/// discrepancy class.
pub const DROPPABLE: &[&str] = &[
    "of",
    "the",
    "unspecified",
    "nos",
    "stage",
    "with",
    "without",
];

/// Returns true if dropping `word` preserves the concept reference.
pub fn is_droppable(word: &str) -> bool {
    DROPPABLE.contains(&word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sites_are_unique() {
        let set: HashSet<&str> = SITES.iter().map(|(s, _)| *s).collect();
        assert_eq!(set.len(), SITES.len());
    }

    #[test]
    fn families_are_unique() {
        let set: HashSet<&str> = FAMILIES.iter().map(|(f, _)| *f).collect();
        assert_eq!(set.len(), FAMILIES.len());
    }

    #[test]
    fn synonym_lookup() {
        assert_eq!(synonyms_of("kidney"), Some(vec!["renal"]));
        assert!(synonyms_of("zebra").is_none());
    }

    #[test]
    fn synonym_lookup_is_bidirectional() {
        assert_eq!(synonyms_of("renal"), Some(vec!["kidney"]));
        assert_eq!(synonyms_of("tumor"), Some(vec!["neoplasm"]));
    }

    #[test]
    fn causes_are_multiword_phrases() {
        for c in CAUSES {
            assert!(c.split(' ').count() >= 2);
        }
    }

    #[test]
    fn paper_abbreviations_present() {
        assert_eq!(abbreviation_of("chronic kidney disease"), Some("ckd"));
        assert_eq!(abbreviation_of("iron"), Some("fe"));
        assert_eq!(abbreviation_of("deficiency"), Some("def"));
        assert_eq!(abbreviation_of("secondary"), Some("2"));
        assert!(abbreviation_of("scurvy").is_none());
    }

    #[test]
    fn synonyms_never_map_to_themselves() {
        for (w, syns) in WORD_SYNONYMS {
            assert!(!syns.contains(w), "{w} maps to itself");
            assert!(!syns.is_empty());
        }
    }

    #[test]
    fn droppable_words() {
        assert!(is_droppable("of"));
        assert!(is_droppable("unspecified"));
        assert!(!is_droppable("kidney"));
    }

    #[test]
    fn all_terms_are_lowercase_tokens() {
        let check = |s: &str| {
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '),
                "bad term {s:?}"
            )
        };
        for (s, _) in SITES {
            check(s);
        }
        for (f, _) in FAMILIES {
            check(f);
        }
        for n in NUTRIENTS {
            check(n);
        }
        for (p, a) in PHRASE_ABBREVS {
            check(p);
            check(a);
        }
    }
}
