//! Dataset assembly: the `hospital-x` and `MIMIC-III` profiles.
//!
//! §6.1 of the paper describes the two real datasets; both are gated, so
//! [`Dataset::generate`] synthesises profile-matched equivalents (see
//! `DESIGN.md` for the substitution argument):
//!
//! * **hospital-x** — ICD-10-CM-style ontology, longer canonical
//!   descriptions, abbreviation-heavy queries (NUH diagnosis strings);
//! * **MIMIC-III** — ICD-9-CM-style ontology, shorter queries
//!   (ICU discharge diagnoses).
//!
//! The evaluation protocol is reproduced: queries come in groups, each
//! holding a fixed number of *purposive* queries covering every
//! word-discrepancy class plus randomly drawn ones (§6.1: 484 per group,
//! 84 purposive, averaged over 10 groups).

use crate::alias_gen::aliases_for;
use crate::ontology_gen::{generate as gen_ontology, OntologyGenConfig};
use crate::query_gen::{corrupt, CorruptionClass};
use ncl_ontology::codes::IcdRevision;
use ncl_ontology::{ConceptId, Ontology};
use ncl_text::tokenize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Which real-world dataset the synthetic workload is modeled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetProfile {
    /// NUH `hospital-x`: ICD-10-CM, abbreviation-heavy.
    HospitalX,
    /// `MIMIC-III`: ICD-9-CM, shorter queries.
    MimicIii,
}

impl DatasetProfile {
    /// The ICD revision the profile links against.
    pub fn revision(self) -> IcdRevision {
        match self {
            Self::HospitalX => IcdRevision::Icd10,
            Self::MimicIii => IcdRevision::Icd9,
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Self::HospitalX => "hospital-x",
            Self::MimicIii => "MIMIC-III",
        }
    }

    /// Corruption-class weights (profile-specific query style).
    pub(crate) fn class_weights(self) -> &'static [(CorruptionClass, u32)] {
        match self {
            // hospital-x: clinicians abbreviate heavily.
            Self::HospitalX => &[
                (CorruptionClass::Exact, 1),
                (CorruptionClass::Abbreviation, 5),
                (CorruptionClass::Acronym, 3),
                (CorruptionClass::Synonym, 3),
                (CorruptionClass::Simplification, 3),
                (CorruptionClass::Typo, 2),
                (CorruptionClass::Reorder, 2),
            ],
            // MIMIC-III: shorter, simplified discharge diagnoses.
            Self::MimicIii => &[
                (CorruptionClass::Exact, 1),
                (CorruptionClass::Abbreviation, 3),
                (CorruptionClass::Acronym, 2),
                (CorruptionClass::Synonym, 3),
                (CorruptionClass::Simplification, 5),
                (CorruptionClass::Typo, 2),
                (CorruptionClass::Reorder, 2),
            ],
        }
    }

    /// Probability that a second (stacked) corruption is applied: real
    /// clinical snippets mix discrepancy classes ("fe def anemia 2' to
    /// menorrhagia" abbreviates *and* simplifies *and* substitutes).
    fn stack_probability(self) -> f64 {
        match self {
            Self::HospitalX => 0.6,
            Self::MimicIii => 0.5,
        }
    }
}

/// Generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Dataset profile.
    pub profile: DatasetProfile,
    /// Number of ontology categories (≈ concepts / 4).
    pub categories: usize,
    /// Maximum aliases generated per concept (labeled data volume).
    pub aliases_per_concept: usize,
    /// Number of unlabeled snippets (physician-note corpus for
    /// pre-training; §3 Model Training, unlabeled source 1).
    pub unlabeled_snippets: usize,
    /// Base RNG seed; every derived stream is seeded from it.
    pub seed: u64,
}

impl DatasetConfig {
    /// A small configuration suitable for unit tests.
    pub fn tiny(profile: DatasetProfile) -> Self {
        Self {
            profile,
            categories: 12,
            aliases_per_concept: 4,
            unlabeled_snippets: 150,
            seed: 0xDA7A,
        }
    }
}

/// A query with its ground-truth concept.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    /// Normalised query tokens.
    pub tokens: Vec<String>,
    /// The referred fine-grained concept.
    pub truth: ConceptId,
    /// The word-discrepancy class that produced the query.
    pub class: CorruptionClass,
}

impl LabeledQuery {
    /// The query as a single string.
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }
}

/// A generated dataset: ontology with aliases (the labeled data), the
/// unlabeled snippet corpus, and a query generator.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Profile this dataset simulates.
    pub profile: DatasetProfile,
    /// Ontology with KB aliases attached to each concept.
    pub ontology: Ontology,
    /// Unlabeled snippets (token sequences), already normalised.
    pub unlabeled: Vec<Vec<String>>,
    config: DatasetConfig,
}

impl Dataset {
    /// Generates a dataset. Deterministic given the config.
    pub fn generate(config: DatasetConfig) -> Self {
        let mut ontology = gen_ontology(OntologyGenConfig {
            revision: config.profile.revision(),
            categories: config.categories,
            seed: config.seed,
        });

        // Attach UMLS-style aliases (labeled data, §3 sources).
        let ids: Vec<ConceptId> = ontology.all_concepts().collect();
        for id in &ids {
            let canonical = ontology.concept(*id).canonical.clone();
            let seed = config.seed ^ (0x_A11A5 + id.0 as u64 * 7919);
            for alias in aliases_for(&canonical, config.aliases_per_concept, seed) {
                ontology.concept_mut(*id).add_alias(alias);
            }
        }

        // Unlabeled corpus: corrupted snippets over random fine-grained
        // concepts, truth discarded (these play the role of accumulated
        // physician notes).
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0B5C_0DE5);
        let fine = ontology.fine_grained();
        let mut unlabeled = Vec::with_capacity(config.unlabeled_snippets);
        for _ in 0..config.unlabeled_snippets {
            if let Some(q) = Self::sample_query(&ontology, &fine, config.profile, &mut rng) {
                unlabeled.push(q.tokens);
            }
        }

        Self {
            profile: config.profile,
            ontology,
            unlabeled,
            config,
        }
    }

    /// The configuration used to generate this dataset.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// All ⟨concept, canonical, alias⟩ training triples (the labeled data
    /// of §4.2's refinement phase).
    pub fn labeled_pairs(&self) -> Vec<(ConceptId, String, String)> {
        let mut out = Vec::new();
        for (id, c) in self.ontology.iter() {
            for alias in &c.aliases {
                out.push((id, c.canonical.clone(), alias.clone()));
            }
        }
        out
    }

    pub(crate) fn sample_query(
        ontology: &Ontology,
        fine: &[ConceptId],
        profile: DatasetProfile,
        rng: &mut StdRng,
    ) -> Option<LabeledQuery> {
        Self::sample_query_weighted(ontology, fine, profile, profile.class_weights(), rng)
    }

    /// [`Dataset::sample_query`] with an explicit corruption-weight
    /// table — the seam that lets workloads skew the discrepancy mix
    /// away from the profile default (e.g. the OOV-heavy groups below).
    pub(crate) fn sample_query_weighted(
        ontology: &Ontology,
        fine: &[ConceptId],
        profile: DatasetProfile,
        weights: &[(CorruptionClass, u32)],
        rng: &mut StdRng,
    ) -> Option<LabeledQuery> {
        let &truth = fine.choose(rng)?;
        let concept = ontology.concept(truth);
        // Source text: canonical or one of its aliases.
        let source = if concept.aliases.is_empty() || rng.gen_bool(0.5) {
            concept.canonical.clone()
        } else {
            concept.aliases[rng.gen_range(0..concept.aliases.len())].clone()
        };
        let total: u32 = weights.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0..total);
        let mut class = CorruptionClass::Exact;
        for (c, w) in weights {
            if pick < *w {
                class = *c;
                break;
            }
            pick -= w;
        }
        let mut tokens = corrupt(&tokenize(&source), class, rng);
        // Stack a second, milder corruption part of the time — clinical
        // shorthand rarely deviates along a single axis.
        if class != CorruptionClass::Exact && rng.gen_bool(profile.stack_probability()) {
            let extra = [
                CorruptionClass::Synonym,
                CorruptionClass::Simplification,
                CorruptionClass::Abbreviation,
            ];
            let second = extra[rng.gen_range(0..extra.len())];
            if second != class {
                tokens = corrupt(&tokens, second, rng);
            }
        }
        if tokens.is_empty() {
            return None;
        }
        Some(LabeledQuery {
            tokens,
            truth,
            class,
        })
    }

    /// Generates one evaluation group: `purposive` queries cycling through
    /// every non-exact corruption class, plus random queries up to
    /// `group_size` (§6.1's 84 + 400 protocol, scaled).
    pub fn query_group(
        &self,
        group_size: usize,
        purposive: usize,
        group_seed: u64,
    ) -> Vec<LabeledQuery> {
        assert!(purposive <= group_size, "purposive exceeds group size");
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ group_seed.wrapping_mul(0x9E3779B9));
        let fine = self.ontology.fine_grained();
        let mut out = Vec::with_capacity(group_size);
        // Purposive part: round-robin over the discrepancy classes.
        let classes = CorruptionClass::PURPOSIVE;
        let mut attempts = 0;
        while out.len() < purposive && attempts < purposive * 20 {
            attempts += 1;
            let class = classes[out.len() % classes.len()];
            let Some(&truth) = fine.as_slice().choose(&mut rng) else {
                break;
            };
            let concept = self.ontology.concept(truth);
            let tokens = corrupt(&tokenize(&concept.canonical), class, &mut rng);
            if tokens.is_empty() {
                continue;
            }
            out.push(LabeledQuery {
                tokens,
                truth,
                class,
            });
        }
        // Random part.
        while out.len() < group_size {
            if let Some(q) = Self::sample_query(&self.ontology, &fine, self.profile, &mut rng) {
                out.push(q);
            }
        }
        out
    }

    /// Generates `n_groups` independent groups (the paper averages
    /// accuracy/MRR over 10 groups).
    pub fn query_groups(
        &self,
        n_groups: usize,
        group_size: usize,
        purposive: usize,
    ) -> Vec<Vec<LabeledQuery>> {
        (0..n_groups)
            .map(|g| self.query_group(group_size, purposive, g as u64 + 1))
            .collect()
    }

    /// Corruption weights for the OOV-heavy workload: skewed to the
    /// classes whose surface forms fall outside the KB vocabulary
    /// (abbreviations, acronyms, typos), with no `Exact` mass at all.
    /// These are the queries where keyword retrieval struggles and the
    /// embedding-ANN backend is expected to help (DESIGN.md §16).
    const OOV_HEAVY_WEIGHTS: &'static [(CorruptionClass, u32)] = &[
        (CorruptionClass::Abbreviation, 5),
        (CorruptionClass::Acronym, 4),
        (CorruptionClass::Typo, 4),
        (CorruptionClass::Synonym, 1),
        (CorruptionClass::Simplification, 1),
    ];

    /// Generates one OOV-heavy evaluation group: every query is drawn
    /// with `Dataset::OOV_HEAVY_WEIGHTS` instead of the profile's
    /// default mix. Seeded disjointly from [`Dataset::query_group`], so
    /// standard and OOV-heavy groups with the same `group_seed` are
    /// decorrelated.
    pub fn oov_heavy_group(&self, group_size: usize, group_seed: u64) -> Vec<LabeledQuery> {
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ 0x00_0F_F0_0D ^ group_seed.wrapping_mul(0x9E3779B9),
        );
        let fine = self.ontology.fine_grained();
        let mut out = Vec::with_capacity(group_size);
        while out.len() < group_size {
            if let Some(q) = Self::sample_query_weighted(
                &self.ontology,
                &fine,
                self.profile,
                Self::OOV_HEAVY_WEIGHTS,
                &mut rng,
            ) {
                out.push(q);
            }
        }
        out
    }

    /// Generates `n_groups` independent OOV-heavy groups.
    pub fn oov_heavy_groups(&self, n_groups: usize, group_size: usize) -> Vec<Vec<LabeledQuery>> {
        (0..n_groups)
            .map(|g| self.oov_heavy_group(group_size, g as u64 + 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(DatasetConfig::tiny(DatasetProfile::HospitalX))
    }

    #[test]
    fn generates_ontology_with_aliases() {
        let d = tiny();
        assert_eq!(d.ontology.children(Ontology::ROOT).len(), 12);
        let with_aliases = d
            .ontology
            .iter()
            .filter(|(_, c)| !c.aliases.is_empty())
            .count();
        assert!(
            with_aliases > d.ontology.num_concepts() / 2,
            "only {with_aliases} concepts have aliases"
        );
    }

    #[test]
    fn labeled_pairs_are_nonidentity() {
        let d = tiny();
        let pairs = d.labeled_pairs();
        assert!(!pairs.is_empty());
        for (_, canonical, alias) in &pairs {
            assert_ne!(canonical, alias);
        }
    }

    #[test]
    fn unlabeled_corpus_has_requested_size() {
        let d = tiny();
        assert!(d.unlabeled.len() >= 140);
        assert!(d.unlabeled.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn query_group_structure() {
        let d = tiny();
        let group = d.query_group(48, 12, 1);
        assert_eq!(group.len(), 48);
        // The purposive prefix covers every non-exact class.
        let classes: std::collections::HashSet<_> = group[..12].iter().map(|q| q.class).collect();
        assert_eq!(classes.len(), CorruptionClass::PURPOSIVE.len());
        // Truths are fine-grained concepts.
        for q in &group {
            assert!(d.ontology.is_fine_grained(q.truth));
        }
    }

    #[test]
    fn groups_are_deterministic_and_distinct() {
        let d = tiny();
        let a = d.query_groups(2, 20, 6);
        let b = d.query_groups(2, 20, 6);
        for (ga, gb) in a.iter().zip(&b) {
            for (qa, qb) in ga.iter().zip(gb) {
                assert_eq!(qa.tokens, qb.tokens);
                assert_eq!(qa.truth, qb.truth);
            }
        }
        // Two groups differ from each other.
        let texts_0: Vec<String> = a[0].iter().map(|q| q.text()).collect();
        let texts_1: Vec<String> = a[1].iter().map(|q| q.text()).collect();
        assert_ne!(texts_0, texts_1);
    }

    #[test]
    fn mimic_profile_uses_icd9() {
        let d = Dataset::generate(DatasetConfig::tiny(DatasetProfile::MimicIii));
        let first = d.ontology.children(Ontology::ROOT)[0];
        let code = &d.ontology.concept(first).code;
        assert!(code.chars().all(|c| c.is_ascii_digit()), "code {code}");
        assert_eq!(d.profile.name(), "MIMIC-III");
    }

    #[test]
    fn oov_heavy_group_skews_to_oov_classes() {
        let d = tiny();
        let group = d.oov_heavy_group(80, 1);
        assert_eq!(group.len(), 80);
        // No Exact queries at all, and the OOV trio dominates.
        assert!(group.iter().all(|q| q.class != CorruptionClass::Exact));
        let oov = group
            .iter()
            .filter(|q| {
                matches!(
                    q.class,
                    CorruptionClass::Abbreviation
                        | CorruptionClass::Acronym
                        | CorruptionClass::Typo
                )
            })
            .count();
        assert!(oov * 2 > group.len(), "only {oov}/80 OOV-class queries");
        for q in &group {
            assert!(d.ontology.is_fine_grained(q.truth));
            assert!(!q.tokens.is_empty());
        }
    }

    #[test]
    fn oov_heavy_groups_deterministic_and_decorrelated_from_standard() {
        let d = tiny();
        let a = d.oov_heavy_groups(2, 20);
        let b = d.oov_heavy_groups(2, 20);
        for (ga, gb) in a.iter().zip(&b) {
            for (qa, qb) in ga.iter().zip(gb) {
                assert_eq!(qa.tokens, qb.tokens);
                assert_eq!(qa.truth, qb.truth);
            }
        }
        // Same group seed, different stream from the standard sampler.
        let standard: Vec<String> = d.query_group(20, 0, 1).iter().map(|q| q.text()).collect();
        let oov: Vec<String> = a[0].iter().map(|q| q.text()).collect();
        assert_ne!(standard, oov);
    }

    #[test]
    #[should_panic(expected = "purposive exceeds")]
    fn oversized_purposive_panics() {
        let d = tiny();
        let _ = d.query_group(10, 11, 1);
    }

    #[test]
    fn queries_reference_real_concepts_with_related_words() {
        // At least the Exact-class queries must literally match a
        // description of their truth concept.
        let d = tiny();
        let group = d.query_group(60, 0, 3);
        let exacts: Vec<&LabeledQuery> = group
            .iter()
            .filter(|q| q.class == CorruptionClass::Exact)
            .collect();
        assert!(!exacts.is_empty());
        for q in exacts {
            let c = d.ontology.concept(q.truth);
            let text = q.text();
            let mut forms = vec![c.canonical.clone()];
            forms.extend(c.aliases.iter().cloned());
            assert!(
                forms.contains(&text),
                "exact query {text:?} not among descriptions of {}",
                c.code
            );
        }
    }
}
