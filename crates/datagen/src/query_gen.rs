//! Labeled query generation under controlled corruption classes.
//!
//! §6.1 of the paper: each evaluation group of 484 queries contains "84
//! purposely selected queries … to cover different cases (e.g.,
//! abbreviation, synonym, acronym, and simplification); the rest are
//! randomly chosen." We reproduce that protocol with an explicit
//! [`CorruptionClass`] per query so experiments can also break results
//! down by discrepancy type.

use crate::lexicon::{is_droppable, synonyms_of, PHRASE_ABBREVS};
use ncl_text::tokenize;
use rand::seq::SliceRandom;
use rand::Rng;

/// The word-discrepancy class applied to a canonical description (or
/// alias) to produce a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionClass {
    /// No corruption: the snippet verbatim (easy control case).
    Exact,
    /// Dictionary / prefix abbreviations (`chronic` → `chr`,
    /// `iron` → `fe`).
    Abbreviation,
    /// Whole-phrase acronym keeping numerals (`chronic kidney disease
    /// stage 5` → `ckd 5`), the paper's q1.
    Acronym,
    /// Word-level synonym substitution (`kidney` → `renal`).
    Synonym,
    /// Dropping function words and vacuous qualifiers (`abdomen pain`
    /// for `unspecified abdominal pain`), the paper's q2.
    Simplification,
    /// A single character-level typo (`neuropaty`).
    Typo,
    /// Token reordering (`anemia iron deficiency`).
    Reorder,
}

impl CorruptionClass {
    /// The classes used for the 84 "purposely selected" queries —
    /// everything except the `Exact` control.
    pub const PURPOSIVE: &'static [CorruptionClass] = &[
        Self::Abbreviation,
        Self::Acronym,
        Self::Synonym,
        Self::Simplification,
        Self::Typo,
        Self::Reorder,
    ];

    /// All classes including `Exact`.
    pub const ALL: &'static [CorruptionClass] = &[
        Self::Exact,
        Self::Abbreviation,
        Self::Acronym,
        Self::Synonym,
        Self::Simplification,
        Self::Typo,
        Self::Reorder,
    ];
}

impl std::fmt::Display for CorruptionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Exact => "exact",
            Self::Abbreviation => "abbreviation",
            Self::Acronym => "acronym",
            Self::Synonym => "synonym",
            Self::Simplification => "simplification",
            Self::Typo => "typo",
            Self::Reorder => "reorder",
        };
        f.write_str(s)
    }
}

/// Replaces the first dictionary phrase found in `tokens` with its
/// abbreviation; falls back to prefix-abbreviating the longest word.
fn abbreviate(tokens: &[String], rng: &mut impl Rng) -> Vec<String> {
    for (phrase, abbr) in PHRASE_ABBREVS {
        let ptoks = tokenize(phrase);
        if ptoks.is_empty() || ptoks.len() > tokens.len() {
            continue;
        }
        if let Some(start) = tokens
            .windows(ptoks.len())
            .position(|w| w.iter().zip(&ptoks).all(|(a, b)| a == b))
        {
            let mut out = tokens[..start].to_vec();
            out.extend(tokenize(abbr));
            out.extend_from_slice(&tokens[start + ptoks.len()..]);
            return out;
        }
    }
    // Fallback: prefix-abbreviate the longest abbreviable word.
    let mut idxs: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].len() >= 6)
        .collect();
    idxs.sort_by_key(|&i| std::cmp::Reverse(tokens[i].len()));
    if let Some(&i) = idxs.first() {
        let keep = rng.gen_range(3..=4);
        let mut out = tokens.to_vec();
        out[i] = tokens[i].chars().take(keep).collect();
        out
    } else {
        tokens.to_vec()
    }
}

/// Forms the acronym query: initials of the core (non-droppable,
/// alphabetic) words, with numerals appended verbatim.
fn acronymize(tokens: &[String]) -> Vec<String> {
    let mut initials = String::new();
    let mut numbers = Vec::new();
    for t in tokens {
        if t.chars().all(|c| c.is_ascii_digit()) {
            numbers.push(t.clone());
        } else if !is_droppable(t) {
            if let Some(c) = t.chars().next() {
                initials.push(c);
            }
        }
    }
    let mut out = Vec::new();
    if !initials.is_empty() {
        out.push(initials);
    }
    out.extend(numbers);
    out
}

/// Substitutes synonyms for up to two substitutable words.
fn synonymize(tokens: &[String], rng: &mut impl Rng) -> Vec<String> {
    let mut out = tokens.to_vec();
    let mut subs = 0;
    let mut order: Vec<usize> = (0..tokens.len()).collect();
    order.shuffle(rng);
    for i in order {
        if subs >= 2 {
            break;
        }
        if let Some(syns) = synonyms_of(&tokens[i]) {
            let syn = syns[rng.gen_range(0..syns.len())];
            out.splice(i..=i, tokenize(syn));
            subs += 1;
        }
    }
    out
}

/// Drops function words / vacuous qualifiers; if nothing is droppable,
/// drops the final token (provided ≥ 2 remain).
fn simplify(tokens: &[String]) -> Vec<String> {
    let core: Vec<String> = tokens
        .iter()
        .filter(|t| !is_droppable(t))
        .cloned()
        .collect();
    if core.len() < tokens.len() && !core.is_empty() {
        core
    } else if tokens.len() > 2 {
        tokens[..tokens.len() - 1].to_vec()
    } else {
        tokens.to_vec()
    }
}

/// Applies one random character edit (delete / transpose / substitute) to
/// a word of length ≥ 5.
fn typo(tokens: &[String], rng: &mut impl Rng) -> Vec<String> {
    let mut out = tokens.to_vec();
    let candidates: Vec<usize> = (0..out.len()).filter(|&i| out[i].len() >= 5).collect();
    let Some(&i) = candidates.as_slice().choose(rng) else {
        return out;
    };
    let mut chars: Vec<char> = out[i].chars().collect();
    let pos = rng.gen_range(1..chars.len());
    match rng.gen_range(0..3) {
        0 => {
            chars.remove(pos);
        }
        1 if pos + 1 < chars.len() => chars.swap(pos, pos + 1),
        _ => {
            let c = (b'a' + rng.gen_range(0..26u8)) as char;
            chars[pos] = c;
        }
    }
    out[i] = chars.into_iter().collect();
    out
}

/// Rotates the token sequence by a random non-zero offset.
fn reorder(tokens: &[String], rng: &mut impl Rng) -> Vec<String> {
    if tokens.len() < 2 {
        return tokens.to_vec();
    }
    let k = rng.gen_range(1..tokens.len());
    let mut out = tokens[k..].to_vec();
    out.extend_from_slice(&tokens[..k]);
    out
}

/// Applies `class` to `tokens`, producing the query form.
///
/// The result is never empty when the input is non-empty; corruption
/// classes that cannot apply degrade to milder transformations rather
/// than returning the input unchanged where possible.
pub fn corrupt(tokens: &[String], class: CorruptionClass, rng: &mut impl Rng) -> Vec<String> {
    if tokens.is_empty() {
        return Vec::new();
    }
    let out = match class {
        CorruptionClass::Exact => tokens.to_vec(),
        CorruptionClass::Abbreviation => abbreviate(tokens, rng),
        CorruptionClass::Acronym => acronymize(tokens),
        CorruptionClass::Synonym => synonymize(tokens, rng),
        CorruptionClass::Simplification => simplify(tokens),
        CorruptionClass::Typo => typo(tokens, rng),
        CorruptionClass::Reorder => reorder(tokens, rng),
    };
    if out.is_empty() {
        tokens.to_vec()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s)
    }

    #[test]
    fn acronym_reproduces_ckd5() {
        // The paper's q1: "ckd 5" for "chronic kidney disease, stage 5".
        let q = acronymize(&toks("chronic kidney disease stage 5"));
        assert_eq!(q, toks("ckd 5"));
    }

    #[test]
    fn abbreviation_uses_dictionary_first() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = abbreviate(&toks("chronic kidney disease stage 5"), &mut rng);
        assert_eq!(q, toks("ckd stage 5"));
    }

    #[test]
    fn abbreviation_falls_back_to_prefix() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = abbreviate(&toks("scorbutic anemia"), &mut rng);
        // No dictionary phrase: longest word ("scorbutic") gets prefixed.
        assert_eq!(q.len(), 2);
        assert!(q[0].len() < "scorbutic".len());
        assert!("scorbutic".starts_with(q[0].as_str()));
    }

    #[test]
    fn synonym_substitutes_known_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = synonymize(&toks("kidney failure"), &mut rng);
        assert_ne!(q, toks("kidney failure"));
        assert!(q.contains(&"renal".to_string()) || q.contains(&"insufficiency".to_string()));
    }

    #[test]
    fn simplification_drops_droppables() {
        let q = simplify(&toks("malignant neoplasm of colon unspecified"));
        assert_eq!(q, toks("malignant neoplasm colon"));
    }

    #[test]
    fn simplification_without_droppables_shortens() {
        let q = simplify(&toks("scorbutic anemia severe"));
        assert_eq!(q, toks("scorbutic anemia"));
    }

    #[test]
    fn typo_changes_exactly_one_word() {
        let mut rng = StdRng::seed_from_u64(5);
        let orig = toks("chronic kidney disease");
        let q = typo(&orig, &mut rng);
        assert_eq!(q.len(), orig.len());
        let diffs = q.iter().zip(&orig).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
        // Still close in edit distance.
        for (a, b) in q.iter().zip(&orig) {
            assert!(ncl_text::edit_distance::damerau_levenshtein(a, b) <= 1);
        }
    }

    #[test]
    fn reorder_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let orig = toks("iron deficiency anemia");
        let q = reorder(&orig, &mut rng);
        let mut a = orig.clone();
        let mut b = q.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_ne!(q, orig);
    }

    #[test]
    fn corrupt_never_empty_for_nonempty_input() {
        let mut rng = StdRng::seed_from_u64(11);
        for &class in CorruptionClass::ALL {
            for text in ["anemia", "ckd", "fracture of femur severe"] {
                let q = corrupt(&toks(text), class, &mut rng);
                assert!(!q.is_empty(), "{class} emptied {text:?}");
            }
        }
    }

    #[test]
    fn exact_is_identity() {
        let mut rng = StdRng::seed_from_u64(13);
        let orig = toks("acute abdomen");
        assert_eq!(corrupt(&orig, CorruptionClass::Exact, &mut rng), orig);
    }

    #[test]
    fn display_names() {
        assert_eq!(CorruptionClass::Acronym.to_string(), "acronym");
        assert_eq!(CorruptionClass::PURPOSIVE.len(), 6);
        assert_eq!(CorruptionClass::ALL.len(), 7);
    }
}
