//! Multi-mention clinical notes with gold span annotations.
//!
//! The paper's serving experiments (and Appendix A's feedback loop)
//! assume a stream of short mention queries, but real clinical traffic
//! arrives as whole notes: narrative filler interleaved with several
//! concept mentions ("pt seen on rounds … *chr iron def anemia* …
//! tolerating diet … *fx femur* …"). [`NoteProfile`] stitches labeled
//! query snippets — the same corrupted surface forms
//! [`crate::query_gen`] produces for single-query workloads — into
//! documents, recording a [`GoldSpan`] per embedded mention so span
//! proposal and document-level linking can be scored end to end.
//!
//! The filler bank is *disjoint by construction* from every medical
//! term bank in [`crate::lexicon`] (sites, families, nutrients,
//! synonyms, qualifiers): filler tokens never appear in a fine-grained
//! concept description, so a proposal pass that fires on filler is a
//! genuine false positive, not a vocabulary accident. A unit test
//! enforces the disjointness against generated ontologies.
//!
//! Everything is deterministic given the config seed: the same
//! `(config, note_seed)` always yields the same note, and notes with
//! different seeds are decorrelated.

use crate::dataset::{Dataset, DatasetProfile};
use crate::query_gen::CorruptionClass;
use ncl_ontology::{ConceptId, Ontology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Narrative filler vocabulary: charting boilerplate that carries no
/// concept reference. Chosen to be disjoint from every term bank in
/// [`crate::lexicon`] and from the qualifier/cause words used by
/// [`crate::ontology_gen`] (no anatomy, no disease families, no
/// qualifiers like "severe"/"left", no digits).
pub const FILLER_WORDS: &[&str] = &[
    "patient",
    "seen",
    "today",
    "on",
    "rounds",
    "reports",
    "denies",
    "states",
    "feeling",
    "better",
    "overnight",
    "vitals",
    "reviewed",
    "labs",
    "pending",
    "plan",
    "continue",
    "current",
    "regimen",
    "followup",
    "arranged",
    "next",
    "week",
    "tolerating",
    "diet",
    "ambulating",
    "in",
    "hallway",
    "alert",
    "and",
    "oriented",
    "resting",
    "comfortably",
    "family",
    "at",
    "bedside",
    "questions",
    "answered",
    "nursing",
    "staff",
    "updated",
    "will",
    "monitor",
    "recheck",
    "this",
    "evening",
    "appetite",
    "fair",
    "sleeping",
    "improved",
    "mood",
    "pleasant",
    "cooperative",
    "home",
    "instructions",
    "given",
    "return",
    "precautions",
    "discussed",
];

/// Generation knobs for one note stream.
#[derive(Debug, Clone, Copy)]
pub struct NoteConfig {
    /// Minimum mentions stitched into one note (inclusive).
    pub mentions_min: usize,
    /// Maximum mentions stitched into one note (inclusive).
    pub mentions_max: usize,
    /// Minimum filler tokens in each gap between mentions (inclusive);
    /// gaps also open and close the note.
    pub filler_min: usize,
    /// Maximum filler tokens per gap (inclusive).
    pub filler_max: usize,
    /// Base RNG seed; each note derives its own stream from it.
    pub seed: u64,
}

impl Default for NoteConfig {
    fn default() -> Self {
        Self {
            mentions_min: 3,
            mentions_max: 8,
            filler_min: 4,
            filler_max: 12,
            seed: 0x0201_50E5,
        }
    }
}

impl NoteConfig {
    /// A small configuration suitable for unit tests.
    pub fn tiny() -> Self {
        Self {
            mentions_min: 2,
            mentions_max: 4,
            filler_min: 2,
            filler_max: 6,
            seed: 0x0201_50E5,
        }
    }
}

/// One gold mention annotation: a half-open token range of the note
/// plus the ground truth it refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldSpan {
    /// Index of the first mention token in [`Note::tokens`].
    pub start: usize,
    /// Number of tokens in the mention.
    pub len: usize,
    /// The referred fine-grained concept.
    pub truth: ConceptId,
    /// The word-discrepancy class that produced the surface form.
    pub class: CorruptionClass,
}

impl GoldSpan {
    /// One past the last mention token (half-open end).
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// A generated clinical note: normalised tokens plus the gold span for
/// every embedded mention, in document order.
#[derive(Debug, Clone)]
pub struct Note {
    /// The full token stream (filler and mentions interleaved).
    pub tokens: Vec<String>,
    /// Gold mention spans, sorted by `start`, non-overlapping.
    pub gold: Vec<GoldSpan>,
}

impl Note {
    /// The note as a single string.
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }

    /// The tokens of one gold span.
    pub fn span_tokens(&self, span: &GoldSpan) -> &[String] {
        &self.tokens[span.start..span.end()]
    }
}

/// Deterministic note generator over any ontology: the two dataset
/// profiles ([`Dataset::note_profile`]) and the ICD-10-CM profile
/// ([`crate::ontology_gen::generate_icd10cm`] passed straight in) all
/// go through this one type.
pub struct NoteProfile<'a> {
    ontology: &'a Ontology,
    profile: DatasetProfile,
    config: NoteConfig,
    fine: Vec<ConceptId>,
}

impl<'a> NoteProfile<'a> {
    /// A note generator over `ontology`, corrupting mention surface
    /// forms with `profile`'s discrepancy mix.
    pub fn new(ontology: &'a Ontology, profile: DatasetProfile, config: NoteConfig) -> Self {
        assert!(
            config.mentions_min >= 1 && config.mentions_min <= config.mentions_max,
            "invalid mention range"
        );
        assert!(
            config.filler_min >= 1 && config.filler_min <= config.filler_max,
            "invalid filler range (filler_min must be >= 1 so adjacent \
             mentions never merge into one surface run)"
        );
        Self {
            ontology,
            profile,
            config,
            fine: ontology.fine_grained(),
        }
    }

    /// The ontology the notes mention concepts from.
    pub fn ontology(&self) -> &Ontology {
        self.ontology
    }

    /// The generation knobs.
    pub fn config(&self) -> &NoteConfig {
        &self.config
    }

    /// Generates one note. Deterministic given `(config, note_seed)`.
    pub fn note(&self, note_seed: u64) -> Note {
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ note_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mentions = rng.gen_range(self.config.mentions_min..=self.config.mentions_max);
        let mut tokens = Vec::new();
        let mut gold = Vec::new();
        self.push_filler(&mut tokens, &mut rng);
        let mut placed = 0;
        let mut attempts = 0;
        while placed < mentions && attempts < mentions * 20 {
            attempts += 1;
            let Some(q) = Dataset::sample_query(self.ontology, &self.fine, self.profile, &mut rng)
            else {
                continue;
            };
            gold.push(GoldSpan {
                start: tokens.len(),
                len: q.tokens.len(),
                truth: q.truth,
                class: q.class,
            });
            tokens.extend(q.tokens);
            self.push_filler(&mut tokens, &mut rng);
            placed += 1;
        }
        Note { tokens, gold }
    }

    /// Generates `n` notes with per-note seeds `1..=n`.
    pub fn notes(&self, n: usize) -> Vec<Note> {
        (0..n).map(|i| self.note(i as u64 + 1)).collect()
    }

    fn push_filler(&self, tokens: &mut Vec<String>, rng: &mut StdRng) {
        let n = rng.gen_range(self.config.filler_min..=self.config.filler_max);
        for _ in 0..n {
            let w = FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())];
            tokens.push(w.to_string());
        }
    }
}

impl Dataset {
    /// A note generator over this dataset's ontology and profile.
    pub fn note_profile(&self, config: NoteConfig) -> NoteProfile<'_> {
        NoteProfile::new(&self.ontology, self.profile, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use crate::ontology_gen::{generate_icd10cm, Icd10CmGenConfig};
    use ncl_text::tokenize;
    use std::collections::HashSet;

    fn tiny() -> Dataset {
        Dataset::generate(DatasetConfig::tiny(DatasetProfile::HospitalX))
    }

    #[test]
    fn notes_are_deterministic() {
        let d = tiny();
        let p = d.note_profile(NoteConfig::tiny());
        let a = p.note(7);
        let b = p.note(7);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.gold, b.gold);
        let c = p.note(8);
        assert_ne!(a.tokens, c.tokens);
    }

    #[test]
    fn gold_spans_are_sorted_disjoint_and_in_range() {
        let d = tiny();
        let p = d.note_profile(NoteConfig::tiny());
        for note in p.notes(20) {
            let cfg = NoteConfig::tiny();
            assert!(note.gold.len() >= cfg.mentions_min);
            assert!(note.gold.len() <= cfg.mentions_max);
            let mut prev_end = 0;
            for s in &note.gold {
                assert!(s.start >= prev_end, "overlapping spans");
                assert!(s.len >= 1);
                assert!(s.end() <= note.tokens.len());
                assert!(d.ontology.is_fine_grained(s.truth));
                prev_end = s.end();
            }
        }
    }

    #[test]
    fn filler_is_disjoint_from_concept_vocabulary() {
        // Every token of every fine-grained description (canonical and
        // aliases) across both dataset profiles must be absent from the
        // filler bank — a proposal firing on filler is then a genuine
        // false positive.
        let filler: HashSet<&str> = FILLER_WORDS.iter().copied().collect();
        for profile in [DatasetProfile::HospitalX, DatasetProfile::MimicIii] {
            let d = Dataset::generate(DatasetConfig::tiny(profile));
            for id in d.ontology.fine_grained() {
                let c = d.ontology.concept(id);
                let mut forms = vec![c.canonical.clone()];
                forms.extend(c.aliases.iter().cloned());
                for form in forms {
                    for t in tokenize(&form) {
                        assert!(
                            !filler.contains(t.as_str()),
                            "filler word {t:?} appears in {}",
                            c.code
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn icd10cm_ontology_generates_notes_directly() {
        let o = generate_icd10cm(Icd10CmGenConfig {
            categories: 20,
            seed: 11,
            encounter_leaves: false,
        });
        let p = NoteProfile::new(&o, DatasetProfile::HospitalX, NoteConfig::tiny());
        let notes = p.notes(5);
        assert_eq!(notes.len(), 5);
        for note in &notes {
            assert!(!note.gold.is_empty());
            for s in &note.gold {
                assert!(o.is_fine_grained(s.truth));
                assert!(!note.span_tokens(s).is_empty());
            }
        }
    }

    #[test]
    fn exact_spans_match_a_description_of_their_truth() {
        let d = tiny();
        let p = d.note_profile(NoteConfig::tiny());
        let mut checked = 0;
        for note in p.notes(40) {
            for s in &note.gold {
                if s.class != CorruptionClass::Exact {
                    continue;
                }
                let c = d.ontology.concept(s.truth);
                let text = note.span_tokens(s).join(" ");
                let mut forms = vec![c.canonical.clone()];
                forms.extend(c.aliases.iter().cloned());
                assert!(
                    forms.contains(&text),
                    "exact span {text:?} not among descriptions of {}",
                    c.code
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no Exact spans sampled in 40 notes");
    }
}
