//! ICD-style ontology generation.
//!
//! The generated tree mirrors the structure of ICD-9-CM/ICD-10-CM as
//! characterised in the paper: categories (`N18`) whose leaf subcategories
//! (`N18.5`, `N18.9`) share most of their canonical description and differ
//! only by a qualifier — exactly the "minor concept meaning difference"
//! (§1/§2.1) that the structural attention exists to disambiguate. Depth
//! is ≤ 3 below the root, matching §6.2's observation that "the ontology
//! depths of ICD-9-CM and ICD-10-CM are typically less than 3 levels".

use crate::lexicon::{synonyms_of, CAUSES, FAMILIES, NUTRIENTS, SITES};
use ncl_ontology::codes::IcdRevision;
use ncl_ontology::{Ontology, OntologyBuilder};
use ncl_text::tokenize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How the leaves of a category qualify its base description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QualifierScheme {
    /// `stage 1` … `stage 5` plus `unspecified` (the N18 block).
    Staged,
    /// `left` / `right` / `unspecified` (paired organs only).
    Sided,
    /// `mild` / `moderate` / `severe`.
    Severity,
    /// `acute` / `chronic` / `unspecified`.
    Acuity,
    /// `with complication` / `without complication`.
    Complication,
    /// `primary` / `secondary` / `unspecified`.
    Cause,
}

impl QualifierScheme {
    fn qualifiers(self) -> Vec<String> {
        match self {
            Self::Staged => (1..=5)
                .map(|s| format!("stage {s}"))
                .chain(std::iter::once("unspecified".to_string()))
                .collect(),
            Self::Sided => ["left", "right", "unspecified"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Self::Severity => ["mild", "moderate", "severe"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Self::Acuity => ["acute", "chronic", "unspecified"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Self::Complication => ["with complication", "without complication"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Self::Cause => ["primary", "secondary", "unspecified"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// Whether the qualifier prefixes (`acute colon ulcer`) rather than
    /// suffixes (`colon ulcer stage 2`) the base description.
    fn prefixes(self) -> bool {
        matches!(self, Self::Severity | Self::Acuity | Self::Cause)
    }
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct OntologyGenConfig {
    /// ICD revision (drives code formatting).
    pub revision: IcdRevision,
    /// Number of three-character categories to generate. Each category
    /// yields 2–6 fine-grained leaves, so expect roughly `4×` this many
    /// concepts.
    pub categories: usize,
    /// RNG seed.
    pub seed: u64,
}

/// One generated category before it is written into the builder.
struct CategorySpec {
    base: String,
    scheme: QualifierScheme,
}

/// Replaces the first substitutable word of `base` with its primary
/// synonym (`malignant neoplasm of kidney` → `malignant tumor of
/// kidney`); returns the base unchanged when nothing substitutes.
fn synonym_variant(base: &str) -> String {
    let mut tokens = tokenize(base);
    for t in tokens.iter_mut() {
        if let Some(syns) = synonyms_of(t) {
            if let Some(first) = syns.first() {
                *t = first.to_string();
                break;
            }
        }
    }
    tokens.join(" ")
}

/// Generates an ICD-style ontology.
///
/// Categories cycle deterministically (after a seeded shuffle) through
/// `family × site` combinations plus the nutrient-anemia block, so two
/// calls with the same config produce identical ontologies.
pub fn generate(config: OntologyGenConfig) -> Ontology {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Enumerate all category bases.
    let mut specs: Vec<CategorySpec> = Vec::new();
    for nutrient in NUTRIENTS {
        specs.push(CategorySpec {
            base: format!("{nutrient} deficiency anemia"),
            scheme: QualifierScheme::Cause,
        });
    }
    let schemes = [
        QualifierScheme::Staged,
        QualifierScheme::Severity,
        QualifierScheme::Acuity,
        QualifierScheme::Complication,
        QualifierScheme::Cause,
    ];
    for (fi, (family, site_first)) in FAMILIES.iter().enumerate() {
        for (si, (site, paired)) in SITES.iter().enumerate() {
            let base = if *site_first {
                format!("{site} {family}")
            } else {
                format!("{family} of {site}")
            };
            let scheme = if *paired && (fi + si) % 3 == 0 {
                QualifierScheme::Sided
            } else {
                schemes[(fi * SITES.len() + si) % schemes.len()]
            };
            specs.push(CategorySpec { base, scheme });
        }
    }
    specs.shuffle(&mut rng);
    // The base pool covers `NUTRIENTS + FAMILIES × SITES` (≈ 490
    // categories). Scale sweeps (the fig11 retrieval benchmark) need
    // 10k–100k-concept ontologies, so when more categories are requested
    // the shuffled pool is cycled with a deterministic `type N`
    // elaboration per round — mirroring ICD's own numbered subtypes
    // ("diabetes mellitus type 2"). No further RNG draws happen, so
    // configurations within the base pool remain byte-identical to what
    // this function has always produced.
    let base_len = specs.len();
    if config.categories > base_len && base_len > 0 {
        let mut round = 1usize;
        'extend: loop {
            for i in 0..base_len {
                if specs.len() >= config.categories {
                    break 'extend;
                }
                let CategorySpec { base, scheme } = &specs[i];
                specs.push(CategorySpec {
                    base: format!("{base} type {round}"),
                    scheme: *scheme,
                });
            }
            round += 1;
        }
    }
    specs.truncate(config.categories);

    let mut builder = OntologyBuilder::new();
    for (ci, spec) in specs.iter().enumerate() {
        let chapter = ci / 36;
        let number = ci % 100;
        let cat_code = match config.revision {
            // The `LNN` grid holds 26 × 36 = 936 distinct codes and the
            // 3-digit grid 1000; past those, wraparound would collide, so
            // scaled categories switch to wider formats whose lengths can
            // never clash with a legacy 3-character code.
            IcdRevision::Icd10 if ci < 936 => config.revision.category_code(chapter, number),
            IcdRevision::Icd10 => format!("U{ci:05}"),
            IcdRevision::Icd9 if ci < 1000 => format!("{ci:03}"),
            IcdRevision::Icd9 => format!("{ci:06}"),
        };
        // A third of the categories get a compound elaboration, mirroring
        // long ICD-10-CM descriptions; this lengthens encoder sequences
        // so the textual attention has something to select from.
        let cat_desc = if ci % 3 == 0 {
            format!("{} {}", spec.base, CAUSES[ci % CAUSES.len()])
        } else {
            spec.base.clone()
        };
        let cat = builder.add_root_concept(cat_code.clone(), cat_desc);
        // ~40% of categories go three levels deep (subcategory → leaf),
        // matching ICD chains like S52.5 → S52.52 → S52.521; the rest
        // stay two levels. §6.2 relies on the mixture: "the ontology
        // depths of ICD-9-CM and ICD-10-CM are typically less than 3
        // levels", and β = 2 only helps when some depth-3 leaves exist.
        let deep = ci % 5 < 2;
        for (li, qual) in spec.scheme.qualifiers().iter().enumerate() {
            let sub_code = format!("{cat_code}.{li}");
            // Real ICD leaves do not repeat the category wording
            // verbatim — E61.1 "iron deficiency" sits under a very
            // different parent description. Let some leaves use a
            // synonym-variant base so their vocabulary diverges from the
            // category's: the structural context (Definition 4.1) then
            // carries complementary words, which is what the paper's
            // structure-based attention exploits.
            let base = if (ci + li) % 3 == 1 {
                synonym_variant(&spec.base)
            } else {
                spec.base.clone()
            };
            let desc = if qual == "unspecified" {
                format!("{base} unspecified")
            } else if spec.scheme.prefixes() {
                format!("{qual} {base}")
            } else {
                format!("{base} {qual}")
            };
            let sub = builder.add_child(cat, sub_code.clone(), desc.clone());
            if deep && qual != "unspecified" {
                // Split the subcategory into depth-3 leaves whose
                // qualifiers come from a second scheme.
                let sub_quals: &[&str] = if spec.scheme == QualifierScheme::Complication {
                    &["mild", "severe"]
                } else {
                    &["with complication", "without complication"]
                };
                for (lj, sq) in sub_quals.iter().enumerate() {
                    let leaf_code = format!("{sub_code}{}", lj + 1);
                    builder.add_child(sub, leaf_code, format!("{desc} {sq}"));
                }
            }
        }
    }
    builder
        .build()
        .expect("generated ontology must always validate")
}

/// Generates an ontology with **at least** `min_concepts` concepts.
///
/// Concept yield per category varies with the qualifier mix (roughly 4×
/// on average), so the category count is grown geometrically until the
/// generated ontology is large enough. The result is a pure function of
/// `(revision, min_concepts, seed)` — the scale benchmarks rely on this
/// to regenerate identical corpora across runs.
pub fn generate_at_least(revision: IcdRevision, min_concepts: usize, seed: u64) -> Ontology {
    let mut categories = (min_concepts / 4).max(1);
    loop {
        let o = generate(OntologyGenConfig {
            revision,
            categories,
            seed,
        });
        if o.num_concepts() >= min_concepts {
            return o;
        }
        categories = categories * 3 / 2 + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ontology {
        generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 20,
            seed: 7,
        })
    }

    #[test]
    fn produces_requested_categories() {
        let o = small();
        let first_level: Vec<_> = o.children(Ontology::ROOT).to_vec();
        assert_eq!(first_level.len(), 20);
    }

    #[test]
    fn leaves_are_fine_grained_and_related_to_category() {
        let o = small();
        let mut verbatim = 0usize;
        let mut total = 0usize;
        for cat in o.children(Ontology::ROOT) {
            let base = &o.concept(*cat).canonical;
            let base_words: Vec<&str> = base.split(' ').collect();
            assert!(o.children(*cat).len() >= 2, "category with <2 children");
            // Walk every fine-grained descendant (depth 2 or 3).
            let descendants: Vec<_> = o
                .fine_grained()
                .into_iter()
                .filter(|&id| o.ancestors(id).contains(cat))
                .collect();
            assert!(!descendants.is_empty());
            for leaf in descendants {
                let desc = &o.concept(leaf).canonical;
                total += 1;
                // Either the leaf keeps the category head word verbatim,
                // or it is a synonym variant that still shares at least
                // one content word ("of"-joined site etc.).
                if desc.contains(base_words[0]) {
                    verbatim += 1;
                } else {
                    assert!(
                        base_words.iter().any(|w| w.len() > 2 && desc.contains(*w)),
                        "leaf {desc:?} unrelated to base {base:?}"
                    );
                }
            }
        }
        // Most leaves keep the category wording; a minority diverge via
        // synonyms (the structural-context signal).
        assert!(
            verbatim * 3 >= total * 2 - total / 10,
            "verbatim {verbatim}/{total}"
        );
        assert!(verbatim < total, "no synonym-variant leaves generated");
    }

    #[test]
    fn sibling_leaves_differ() {
        let o = small();
        for cat in o.children(Ontology::ROOT) {
            let descs: Vec<&str> = o
                .children(*cat)
                .iter()
                .map(|l| o.concept(*l).canonical.as_str())
                .collect();
            let mut dedup = descs.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(descs.len(), dedup.len(), "duplicate sibling leaves");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.num_concepts(), b.num_concepts());
        for (ia, ib) in a.iter().zip(b.iter()) {
            assert_eq!(ia.1.code, ib.1.code);
            assert_eq!(ia.1.canonical, ib.1.canonical);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 20,
            seed: 8,
        });
        let codes_a: Vec<_> = a.iter().map(|(_, c)| c.canonical.clone()).collect();
        let codes_b: Vec<_> = b.iter().map(|(_, c)| c.canonical.clone()).collect();
        assert_ne!(codes_a, codes_b);
    }

    #[test]
    fn depth_mixture_matches_icd() {
        let o = small();
        // Depth ≤ 3 ("typically less than 3 levels", §6.2)…
        assert!(o.max_depth() <= 3);
        // …and both depth-2 and depth-3 fine-grained concepts exist.
        let fine = o.fine_grained();
        let d2 = fine.iter().filter(|&&id| o.depth(id) == 2).count();
        let d3 = fine.iter().filter(|&&id| o.depth(id) == 3).count();
        assert!(d2 > 0, "no depth-2 leaves");
        assert!(d3 > 0, "no depth-3 leaves");
    }

    #[test]
    fn depth3_leaves_have_two_distinct_ancestors() {
        let o = small();
        let leaf = o
            .fine_grained()
            .into_iter()
            .find(|&id| o.depth(id) == 3)
            .expect("a depth-3 leaf");
        let ctx = o.structural_context(leaf, 2);
        assert_eq!(ctx.len(), 2);
        assert_ne!(ctx[0], ctx[1], "beta=2 should reach the grandparent");
    }

    #[test]
    fn icd9_codes_are_numeric() {
        let o = generate(OntologyGenConfig {
            revision: IcdRevision::Icd9,
            categories: 10,
            seed: 1,
        });
        for cat in o.children(Ontology::ROOT) {
            let code = &o.concept(*cat).code;
            let (category, _) = ncl_ontology::codes::split_code(code);
            assert!(category.chars().all(|c| c.is_ascii_digit()), "code {code}");
        }
    }

    #[test]
    fn scales_past_the_base_pool() {
        // 3000 categories ≫ the ~490-spec base pool: the cycled pool must
        // produce unique codes (build() rejects duplicates) and the
        // requested breadth at the first level.
        let o = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 3000,
            seed: 11,
        });
        assert_eq!(o.children(Ontology::ROOT).len(), 3000);
        assert!(o.num_concepts() > 12_000, "got {}", o.num_concepts());
        // Cycled categories carry the round label.
        let typed = o
            .iter()
            .filter(|(_, c)| c.canonical.contains(" type "))
            .count();
        assert!(typed > 0, "no cycled categories at 3000");
    }

    #[test]
    fn scaling_preserves_the_base_prefix() {
        // Growing the category count must not perturb the ontology's
        // existing prefix: same seed, first 100 categories identical.
        let small = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 100,
            seed: 5,
        });
        let large = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 2000,
            seed: 5,
        });
        let cats_small = small.children(Ontology::ROOT).to_vec();
        let cats_large = large.children(Ontology::ROOT).to_vec();
        for (a, b) in cats_small.iter().zip(cats_large.iter()).take(100) {
            assert_eq!(small.concept(*a).code, large.concept(*b).code);
            assert_eq!(small.concept(*a).canonical, large.concept(*b).canonical);
        }
    }

    #[test]
    fn scaled_icd9_codes_stay_numeric() {
        let o = generate(OntologyGenConfig {
            revision: IcdRevision::Icd9,
            categories: 1500,
            seed: 2,
        });
        assert_eq!(o.children(Ontology::ROOT).len(), 1500);
        for cat in o.children(Ontology::ROOT) {
            let code = &o.concept(*cat).code;
            let (category, _) = ncl_ontology::codes::split_code(code);
            assert!(category.chars().all(|c| c.is_ascii_digit()), "code {code}");
        }
    }

    #[test]
    fn generate_at_least_meets_the_floor() {
        let o = generate_at_least(IcdRevision::Icd10, 10_000, 9);
        assert!(o.num_concepts() >= 10_000, "got {}", o.num_concepts());
        // Deterministic: same inputs, same ontology.
        let o2 = generate_at_least(IcdRevision::Icd10, 10_000, 9);
        assert_eq!(o.num_concepts(), o2.num_concepts());
    }

    #[test]
    fn includes_anemia_block_at_full_size() {
        let o = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 500, // larger than the spec pool: keep everything
            seed: 3,
        });
        let has_anemia = o
            .iter()
            .any(|(_, c)| c.canonical.contains("iron deficiency anemia"));
        assert!(has_anemia);
    }
}
