//! ICD-style ontology generation.
//!
//! The generated tree mirrors the structure of ICD-9-CM/ICD-10-CM as
//! characterised in the paper: categories (`N18`) whose leaf subcategories
//! (`N18.5`, `N18.9`) share most of their canonical description and differ
//! only by a qualifier — exactly the "minor concept meaning difference"
//! (§1/§2.1) that the structural attention exists to disambiguate. Depth
//! is ≤ 3 below the root, matching §6.2's observation that "the ontology
//! depths of ICD-9-CM and ICD-10-CM are typically less than 3 levels".

use crate::lexicon::{synonyms_of, CAUSES, FAMILIES, NUTRIENTS, SITES};
use ncl_ontology::codes::IcdRevision;
use ncl_ontology::{ConceptId, Ontology, OntologyBuilder};
use ncl_text::tokenize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How the leaves of a category qualify its base description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QualifierScheme {
    /// `stage 1` … `stage 5` plus `unspecified` (the N18 block).
    Staged,
    /// `left` / `right` / `unspecified` (paired organs only).
    Sided,
    /// `mild` / `moderate` / `severe`.
    Severity,
    /// `acute` / `chronic` / `unspecified`.
    Acuity,
    /// `with complication` / `without complication`.
    Complication,
    /// `primary` / `secondary` / `unspecified`.
    Cause,
}

impl QualifierScheme {
    fn qualifiers(self) -> Vec<String> {
        match self {
            Self::Staged => (1..=5)
                .map(|s| format!("stage {s}"))
                .chain(std::iter::once("unspecified".to_string()))
                .collect(),
            Self::Sided => ["left", "right", "unspecified"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Self::Severity => ["mild", "moderate", "severe"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Self::Acuity => ["acute", "chronic", "unspecified"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Self::Complication => ["with complication", "without complication"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Self::Cause => ["primary", "secondary", "unspecified"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// Whether the qualifier prefixes (`acute colon ulcer`) rather than
    /// suffixes (`colon ulcer stage 2`) the base description.
    fn prefixes(self) -> bool {
        matches!(self, Self::Severity | Self::Acuity | Self::Cause)
    }
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct OntologyGenConfig {
    /// ICD revision (drives code formatting).
    pub revision: IcdRevision,
    /// Number of three-character categories to generate. Each category
    /// yields 2–6 fine-grained leaves, so expect roughly `4×` this many
    /// concepts.
    pub categories: usize,
    /// RNG seed.
    pub seed: u64,
}

/// One generated category before it is written into the builder.
struct CategorySpec {
    base: String,
    scheme: QualifierScheme,
}

/// Replaces the first substitutable word of `base` with its primary
/// synonym (`malignant neoplasm of kidney` → `malignant tumor of
/// kidney`); returns the base unchanged when nothing substitutes.
fn synonym_variant(base: &str) -> String {
    let mut tokens = tokenize(base);
    for t in tokens.iter_mut() {
        if let Some(syns) = synonyms_of(t) {
            if let Some(first) = syns.first() {
                *t = first.to_string();
                break;
            }
        }
    }
    tokens.join(" ")
}

/// Builds the shuffled category-spec pool shared by both generators:
/// `family × site` combinations plus the nutrient-anemia block,
/// shuffled once with the seeded RNG (the only RNG draws either
/// generator makes).
fn spec_pool(rng: &mut StdRng) -> Vec<CategorySpec> {
    let mut specs: Vec<CategorySpec> = Vec::new();
    for nutrient in NUTRIENTS {
        specs.push(CategorySpec {
            base: format!("{nutrient} deficiency anemia"),
            scheme: QualifierScheme::Cause,
        });
    }
    let schemes = [
        QualifierScheme::Staged,
        QualifierScheme::Severity,
        QualifierScheme::Acuity,
        QualifierScheme::Complication,
        QualifierScheme::Cause,
    ];
    for (fi, (family, site_first)) in FAMILIES.iter().enumerate() {
        for (si, (site, paired)) in SITES.iter().enumerate() {
            let base = if *site_first {
                format!("{site} {family}")
            } else {
                format!("{family} of {site}")
            };
            let scheme = if *paired && (fi + si) % 3 == 0 {
                QualifierScheme::Sided
            } else {
                schemes[(fi * SITES.len() + si) % schemes.len()]
            };
            specs.push(CategorySpec { base, scheme });
        }
    }
    specs.shuffle(rng);
    specs
}

/// The base and scheme for global category index `ci`. The base pool
/// covers `NUTRIENTS + FAMILIES × SITES` (≈ 490 categories); scale
/// sweeps (fig11, fig17) need 10k–100k-concept ontologies, so past the
/// pool the specs are cycled with a deterministic `type N` elaboration
/// per round — mirroring ICD's own numbered subtypes ("diabetes
/// mellitus type 2"). No RNG draws happen here, so configurations
/// within the base pool remain byte-identical to what [`generate`] has
/// always produced.
fn spec_for(specs: &[CategorySpec], ci: usize) -> (String, QualifierScheme) {
    let spec = &specs[ci % specs.len()];
    let round = ci / specs.len();
    let base = if round == 0 {
        spec.base.clone()
    } else {
        format!("{} type {round}", spec.base)
    };
    (base, spec.scheme)
}

/// Writes one category subtree (category → subcategories → optional
/// depth split → optional encounter leaves) under `parent` (the
/// ontology root when `None`). `ci` is the global category index — it
/// deterministically drives the description elaborations, so the same
/// `(ci, base, scheme)` always produces the same subtree.
fn build_category(
    builder: &mut OntologyBuilder,
    parent: Option<ConceptId>,
    cat_code: &str,
    ci: usize,
    base: &str,
    scheme: QualifierScheme,
    encounter_leaves: bool,
) {
    // A third of the categories get a compound elaboration, mirroring
    // long ICD-10-CM descriptions; this lengthens encoder sequences
    // so the textual attention has something to select from.
    let cat_desc = if ci.is_multiple_of(3) {
        format!("{} {}", base, CAUSES[ci % CAUSES.len()])
    } else {
        base.to_string()
    };
    let cat = match parent {
        None => builder.add_root_concept(cat_code, cat_desc),
        Some(p) => builder.add_child(p, cat_code, cat_desc),
    };
    // ~40% of categories go three levels deep (subcategory → leaf),
    // matching ICD chains like S52.5 → S52.52 → S52.521; the rest
    // stay two levels. §6.2 relies on the mixture: "the ontology
    // depths of ICD-9-CM and ICD-10-CM are typically less than 3
    // levels", and β = 2 only helps when some depth-3 leaves exist.
    let deep = ci % 5 < 2;
    for (li, qual) in scheme.qualifiers().iter().enumerate() {
        let sub_code = format!("{cat_code}.{li}");
        // Real ICD leaves do not repeat the category wording
        // verbatim — E61.1 "iron deficiency" sits under a very
        // different parent description. Let some leaves use a
        // synonym-variant base so their vocabulary diverges from the
        // category's: the structural context (Definition 4.1) then
        // carries complementary words, which is what the paper's
        // structure-based attention exploits.
        let qbase = if (ci + li) % 3 == 1 {
            synonym_variant(base)
        } else {
            base.to_string()
        };
        let desc = if qual == "unspecified" {
            format!("{qbase} unspecified")
        } else if scheme.prefixes() {
            format!("{qual} {qbase}")
        } else {
            format!("{qbase} {qual}")
        };
        let sub = builder.add_child(cat, sub_code.clone(), desc.clone());
        if deep && qual != "unspecified" {
            // Split the subcategory into depth-3 leaves whose
            // qualifiers come from a second scheme.
            let sub_quals: &[&str] = if scheme == QualifierScheme::Complication {
                &["mild", "severe"]
            } else {
                &["with complication", "without complication"]
            };
            for (lj, sq) in sub_quals.iter().enumerate() {
                let leaf_code = format!("{sub_code}{}", lj + 1);
                let leaf = builder.add_child(sub, leaf_code.clone(), format!("{desc} {sq}"));
                if encounter_leaves {
                    for (ch, enc) in ENCOUNTERS {
                        builder.add_child(
                            leaf,
                            format!("{leaf_code}{ch}"),
                            format!("{desc} {sq} {enc}"),
                        );
                    }
                }
            }
        } else if encounter_leaves {
            for (ch, enc) in ENCOUNTERS {
                builder.add_child(sub, format!("{sub_code}{ch}"), format!("{desc} {enc}"));
            }
        }
    }
}

/// Generates an ICD-style ontology.
///
/// Categories cycle deterministically (after a seeded shuffle) through
/// `family × site` combinations plus the nutrient-anemia block, so two
/// calls with the same config produce identical ontologies.
pub fn generate(config: OntologyGenConfig) -> Ontology {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let specs = spec_pool(&mut rng);
    let mut builder = OntologyBuilder::new();
    for ci in 0..config.categories {
        let chapter = ci / 36;
        let number = ci % 100;
        let cat_code = match config.revision {
            // The `LNN` grid holds 26 × 36 = 936 distinct codes and the
            // 3-digit grid 1000; past those, wraparound would collide, so
            // scaled categories switch to wider formats whose lengths can
            // never clash with a legacy 3-character code.
            IcdRevision::Icd10 if ci < 936 => config.revision.category_code(chapter, number),
            IcdRevision::Icd10 => format!("U{ci:05}"),
            IcdRevision::Icd9 if ci < 1000 => format!("{ci:03}"),
            IcdRevision::Icd9 => format!("{ci:06}"),
        };
        let (base, scheme) = spec_for(&specs, ci);
        build_category(&mut builder, None, &cat_code, ci, &base, scheme, false);
    }
    builder
        .build()
        .expect("generated ontology must always validate")
}

/// ICD-10-CM 7th-character encounter extensions, applied to childless
/// fine-grained codes when [`Icd10CmGenConfig::encounter_leaves`] is
/// set (`S52.521A` "… initial encounter").
const ENCOUNTERS: &[(char, &str)] = &[
    ('A', "initial encounter"),
    ('D', "subsequent encounter"),
    ('S', "sequela"),
];

/// The 21 chapters of ICD-10-CM as `(range, title, decade spans)`.
/// Each span `(letter, first_decade, last_decade)` is the slice of the
/// `letter × decade` category grid the chapter owns; the spans are
/// mutually disjoint (the real H00-H59/H60-H95 and C00-D49/D50-D89
/// splits fall on decade boundaries), so generated category codes can
/// never collide across chapters. Span widths are taken from the real
/// code ranges, which is what skews chapter sizes — external causes
/// (V00-Y99) owns 40 decades, blood disorders (D50-D89) only 4.
type ChapterSpec = (&'static str, &'static str, &'static [(char, u8, u8)]);
const ICD10CM_CHAPTERS: &[ChapterSpec] = &[
    ("A00-B99", "certain infectious and parasitic diseases", &[('A', 0, 9), ('B', 0, 9)]),
    ("C00-D49", "neoplasms", &[('C', 0, 9), ('D', 0, 4)]),
    (
        "D50-D89",
        "diseases of the blood and blood forming organs and certain disorders involving the immune mechanism",
        &[('D', 5, 8)],
    ),
    ("E00-E89", "endocrine nutritional and metabolic diseases", &[('E', 0, 8)]),
    ("F01-F99", "mental behavioral and neurodevelopmental disorders", &[('F', 0, 9)]),
    ("G00-G99", "diseases of the nervous system", &[('G', 0, 9)]),
    ("H00-H59", "diseases of the eye and adnexa", &[('H', 0, 5)]),
    ("H60-H95", "diseases of the ear and mastoid process", &[('H', 6, 9)]),
    ("I00-I99", "diseases of the circulatory system", &[('I', 0, 9)]),
    ("J00-J99", "diseases of the respiratory system", &[('J', 0, 9)]),
    ("K00-K95", "diseases of the digestive system", &[('K', 0, 9)]),
    ("L00-L99", "diseases of the skin and subcutaneous tissue", &[('L', 0, 9)]),
    ("M00-M99", "diseases of the musculoskeletal system and connective tissue", &[('M', 0, 9)]),
    ("N00-N99", "diseases of the genitourinary system", &[('N', 0, 9)]),
    ("O00-O9A", "pregnancy childbirth and the puerperium", &[('O', 0, 9)]),
    ("P00-P96", "certain conditions originating in the perinatal period", &[('P', 0, 9)]),
    (
        "Q00-Q99",
        "congenital malformations deformations and chromosomal abnormalities",
        &[('Q', 0, 9)],
    ),
    (
        "R00-R99",
        "symptoms signs and abnormal clinical and laboratory findings not elsewhere classified",
        &[('R', 0, 9)],
    ),
    (
        "S00-T88",
        "injury poisoning and certain other consequences of external causes",
        &[('S', 0, 9), ('T', 0, 8)],
    ),
    (
        "V00-Y99",
        "external causes of morbidity",
        &[('V', 0, 9), ('W', 0, 9), ('X', 0, 9), ('Y', 0, 9)],
    ),
    (
        "Z00-Z99",
        "factors influencing health status and contact with health services",
        &[('Z', 0, 9)],
    ),
];

/// Category codes per decade cell: ten numeric third characters plus
/// the 26-letter alphanumeric extension ICD-10-CM itself uses past the
/// numeric grid (`C7A`, `M1A`, `O9A`, `Z3A`, …).
const DECADE_CAPACITY: usize = 36;

fn chapter_capacity(spans: &[(char, u8, u8)]) -> usize {
    spans
        .iter()
        .map(|&(_, lo, hi)| (hi - lo + 1) as usize * DECADE_CAPACITY)
        .sum()
}

/// Total category capacity of the ICD-10-CM code grid — the most
/// categories [`generate_icd10cm`] can emit before running out of
/// collision-free chapter-prefixed codes.
pub fn icd10cm_category_capacity() -> usize {
    ICD10CM_CHAPTERS
        .iter()
        .map(|(_, _, spans)| chapter_capacity(spans))
        .sum()
}

/// The category codes a chapter owns, in range order: numeric third
/// characters first within each decade (`A00`…`A09`), then the
/// alphanumeric extension (`A0A`…`A0Z`), then the next decade.
fn chapter_codes(spans: &'static [(char, u8, u8)]) -> impl Iterator<Item = String> {
    spans.iter().flat_map(|&(letter, lo, hi)| {
        (lo..=hi).flat_map(move |decade| {
            ('0'..='9')
                .chain('A'..='Z')
                .map(move |c| format!("{letter}{decade}{c}"))
        })
    })
}

/// Configuration for [`generate_icd10cm`].
#[derive(Debug, Clone, Copy)]
pub struct Icd10CmGenConfig {
    /// Number of categories, distributed across the 21 chapters
    /// proportionally to each chapter's share of the code grid and
    /// clamped to [`icd10cm_category_capacity`].
    pub categories: usize,
    /// RNG seed (spec-pool shuffle only, as in [`generate`]).
    pub seed: u64,
    /// Give every childless fine-grained code three encounter children
    /// (`A` initial / `D` subsequent / `S` sequela seventh
    /// characters); roughly triples the concept yield, which is
    /// how the profile reaches ICD-10-CM's 93,830 codes within the
    /// category grid.
    pub encounter_leaves: bool,
}

/// Generates an ICD-10-CM-shaped ontology: 21 skewed chapters as
/// first-level concepts (so per-chapter cache shards mirror the real
/// ontology's layout), chapter-prefixed alphanumeric category codes
/// that are collision-free by construction at any size the grid
/// admits, and the same qualifier-scheme subtrees as [`generate`].
/// Deterministic: a pure function of the config.
pub fn generate_icd10cm(config: Icd10CmGenConfig) -> Ontology {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let specs = spec_pool(&mut rng);
    let capacity = icd10cm_category_capacity();
    let categories = config.categories.min(capacity);
    let mut builder = OntologyBuilder::new();
    let mut ci = 0usize;
    let mut cap_prefix = 0usize;
    for (range, title, spans) in ICD10CM_CHAPTERS {
        // Telescoping proportional split: chapter `i` gets
        // `floor(C·prefix_i/T) − floor(C·prefix_{i−1}/T)` categories,
        // which sums to exactly `categories` and never exceeds the
        // chapter's own capacity.
        cap_prefix += chapter_capacity(spans);
        let want = categories * cap_prefix / capacity - ci;
        if want == 0 {
            continue;
        }
        let chapter = builder.add_root_concept(*range, *title);
        for code in chapter_codes(spans).take(want) {
            let (base, scheme) = spec_for(&specs, ci);
            build_category(
                &mut builder,
                Some(chapter),
                &code,
                ci,
                &base,
                scheme,
                config.encounter_leaves,
            );
            ci += 1;
        }
    }
    builder
        .build()
        .expect("generated ICD-10-CM ontology must always validate")
}

/// Generates an ICD-10-CM-shaped ontology with **at least**
/// `min_concepts` concepts (a pure function of its inputs, like
/// [`generate_at_least`]). The category count grows geometrically
/// until the floor is met; at grid capacity the generator turns on
/// encounter leaves, which covers paper scale (93,830 concepts) with
/// room to spare.
///
/// # Panics
/// Panics if `min_concepts` exceeds what the full grid with encounter
/// leaves can produce (≈ 160k concepts).
pub fn generate_icd10cm_at_least(min_concepts: usize, seed: u64) -> Ontology {
    let capacity = icd10cm_category_capacity();
    // Concept yield per category is ≈6 without encounter leaves and
    // ≈18 with, so start below the estimate and grow geometrically —
    // the result lands near the floor instead of far past it. When the
    // grid runs out, encounter leaves turn on and the estimate resets.
    let mut encounter_leaves = false;
    let mut categories = (min_concepts / 6).clamp(ICD10CM_CHAPTERS.len(), capacity);
    loop {
        let o = generate_icd10cm(Icd10CmGenConfig {
            categories,
            seed,
            encounter_leaves,
        });
        if o.num_concepts() >= min_concepts {
            return o;
        }
        if categories < capacity {
            categories = (categories * 3 / 2 + 1).min(capacity);
        } else if !encounter_leaves {
            encounter_leaves = true;
            categories = (min_concepts / 18).clamp(ICD10CM_CHAPTERS.len(), capacity);
        } else {
            panic!(
                "ICD-10-CM grid capacity exhausted at {} concepts, below the requested {min_concepts}",
                o.num_concepts()
            );
        }
    }
}

/// Generates an ontology with **at least** `min_concepts` concepts.
///
/// Concept yield per category varies with the qualifier mix (roughly 4×
/// on average), so the category count is grown geometrically until the
/// generated ontology is large enough. The result is a pure function of
/// `(revision, min_concepts, seed)` — the scale benchmarks rely on this
/// to regenerate identical corpora across runs.
pub fn generate_at_least(revision: IcdRevision, min_concepts: usize, seed: u64) -> Ontology {
    let mut categories = (min_concepts / 4).max(1);
    loop {
        let o = generate(OntologyGenConfig {
            revision,
            categories,
            seed,
        });
        if o.num_concepts() >= min_concepts {
            return o;
        }
        categories = categories * 3 / 2 + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ontology {
        generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 20,
            seed: 7,
        })
    }

    #[test]
    fn produces_requested_categories() {
        let o = small();
        let first_level: Vec<_> = o.children(Ontology::ROOT).to_vec();
        assert_eq!(first_level.len(), 20);
    }

    #[test]
    fn leaves_are_fine_grained_and_related_to_category() {
        let o = small();
        let mut verbatim = 0usize;
        let mut total = 0usize;
        for cat in o.children(Ontology::ROOT) {
            let base = &o.concept(*cat).canonical;
            let base_words: Vec<&str> = base.split(' ').collect();
            assert!(o.children(*cat).len() >= 2, "category with <2 children");
            // Walk every fine-grained descendant (depth 2 or 3).
            let descendants: Vec<_> = o
                .fine_grained()
                .into_iter()
                .filter(|&id| o.ancestors(id).contains(cat))
                .collect();
            assert!(!descendants.is_empty());
            for leaf in descendants {
                let desc = &o.concept(leaf).canonical;
                total += 1;
                // Either the leaf keeps the category head word verbatim,
                // or it is a synonym variant that still shares at least
                // one content word ("of"-joined site etc.).
                if desc.contains(base_words[0]) {
                    verbatim += 1;
                } else {
                    assert!(
                        base_words.iter().any(|w| w.len() > 2 && desc.contains(*w)),
                        "leaf {desc:?} unrelated to base {base:?}"
                    );
                }
            }
        }
        // Most leaves keep the category wording; a minority diverge via
        // synonyms (the structural-context signal).
        assert!(
            verbatim * 3 >= total * 2 - total / 10,
            "verbatim {verbatim}/{total}"
        );
        assert!(verbatim < total, "no synonym-variant leaves generated");
    }

    #[test]
    fn sibling_leaves_differ() {
        let o = small();
        for cat in o.children(Ontology::ROOT) {
            let descs: Vec<&str> = o
                .children(*cat)
                .iter()
                .map(|l| o.concept(*l).canonical.as_str())
                .collect();
            let mut dedup = descs.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(descs.len(), dedup.len(), "duplicate sibling leaves");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.num_concepts(), b.num_concepts());
        for (ia, ib) in a.iter().zip(b.iter()) {
            assert_eq!(ia.1.code, ib.1.code);
            assert_eq!(ia.1.canonical, ib.1.canonical);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 20,
            seed: 8,
        });
        let codes_a: Vec<_> = a.iter().map(|(_, c)| c.canonical.clone()).collect();
        let codes_b: Vec<_> = b.iter().map(|(_, c)| c.canonical.clone()).collect();
        assert_ne!(codes_a, codes_b);
    }

    #[test]
    fn depth_mixture_matches_icd() {
        let o = small();
        // Depth ≤ 3 ("typically less than 3 levels", §6.2)…
        assert!(o.max_depth() <= 3);
        // …and both depth-2 and depth-3 fine-grained concepts exist.
        let fine = o.fine_grained();
        let d2 = fine.iter().filter(|&&id| o.depth(id) == 2).count();
        let d3 = fine.iter().filter(|&&id| o.depth(id) == 3).count();
        assert!(d2 > 0, "no depth-2 leaves");
        assert!(d3 > 0, "no depth-3 leaves");
    }

    #[test]
    fn depth3_leaves_have_two_distinct_ancestors() {
        let o = small();
        let leaf = o
            .fine_grained()
            .into_iter()
            .find(|&id| o.depth(id) == 3)
            .expect("a depth-3 leaf");
        let ctx = o.structural_context(leaf, 2);
        assert_eq!(ctx.len(), 2);
        assert_ne!(ctx[0], ctx[1], "beta=2 should reach the grandparent");
    }

    #[test]
    fn icd9_codes_are_numeric() {
        let o = generate(OntologyGenConfig {
            revision: IcdRevision::Icd9,
            categories: 10,
            seed: 1,
        });
        for cat in o.children(Ontology::ROOT) {
            let code = &o.concept(*cat).code;
            let (category, _) = ncl_ontology::codes::split_code(code);
            assert!(category.chars().all(|c| c.is_ascii_digit()), "code {code}");
        }
    }

    #[test]
    fn scales_past_the_base_pool() {
        // 3000 categories ≫ the ~490-spec base pool: the cycled pool must
        // produce unique codes (build() rejects duplicates) and the
        // requested breadth at the first level.
        let o = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 3000,
            seed: 11,
        });
        assert_eq!(o.children(Ontology::ROOT).len(), 3000);
        assert!(o.num_concepts() > 12_000, "got {}", o.num_concepts());
        // Cycled categories carry the round label.
        let typed = o
            .iter()
            .filter(|(_, c)| c.canonical.contains(" type "))
            .count();
        assert!(typed > 0, "no cycled categories at 3000");
    }

    #[test]
    fn scaling_preserves_the_base_prefix() {
        // Growing the category count must not perturb the ontology's
        // existing prefix: same seed, first 100 categories identical.
        let small = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 100,
            seed: 5,
        });
        let large = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 2000,
            seed: 5,
        });
        let cats_small = small.children(Ontology::ROOT).to_vec();
        let cats_large = large.children(Ontology::ROOT).to_vec();
        for (a, b) in cats_small.iter().zip(cats_large.iter()).take(100) {
            assert_eq!(small.concept(*a).code, large.concept(*b).code);
            assert_eq!(small.concept(*a).canonical, large.concept(*b).canonical);
        }
    }

    #[test]
    fn scaled_icd9_codes_stay_numeric() {
        let o = generate(OntologyGenConfig {
            revision: IcdRevision::Icd9,
            categories: 1500,
            seed: 2,
        });
        assert_eq!(o.children(Ontology::ROOT).len(), 1500);
        for cat in o.children(Ontology::ROOT) {
            let code = &o.concept(*cat).code;
            let (category, _) = ncl_ontology::codes::split_code(code);
            assert!(category.chars().all(|c| c.is_ascii_digit()), "code {code}");
        }
    }

    #[test]
    fn generate_at_least_meets_the_floor() {
        let o = generate_at_least(IcdRevision::Icd10, 10_000, 9);
        assert!(o.num_concepts() >= 10_000, "got {}", o.num_concepts());
        // Deterministic: same inputs, same ontology.
        let o2 = generate_at_least(IcdRevision::Icd10, 10_000, 9);
        assert_eq!(o.num_concepts(), o2.num_concepts());
    }

    #[test]
    fn icd10cm_chapters_are_first_level_with_prefixed_codes() {
        let o = generate_icd10cm(Icd10CmGenConfig {
            categories: 500,
            seed: 17,
            encounter_leaves: false,
        });
        let chapters = o.children(Ontology::ROOT).to_vec();
        assert_eq!(chapters.len(), ICD10CM_CHAPTERS.len(), "all 21 chapters");
        let mut sizes = Vec::new();
        for (ch, (range, _, spans)) in chapters.iter().zip(ICD10CM_CHAPTERS) {
            assert_eq!(&o.concept(*ch).code, range);
            let letters: Vec<char> = spans.iter().map(|&(l, _, _)| l).collect();
            for cat in o.children(*ch) {
                let code = &o.concept(*cat).code;
                // Chapter-prefixed alphanumeric `LNX` category codes.
                let mut cs = code.chars();
                let first = cs.next().unwrap();
                assert!(letters.contains(&first), "code {code} outside {range}");
                assert!(cs.next().unwrap().is_ascii_digit(), "code {code}");
                assert!(cs.next().unwrap().is_ascii_alphanumeric(), "code {code}");
            }
            sizes.push(o.children(*ch).len());
        }
        // The real code ranges skew chapter sizes: external causes
        // (V00-Y99, 40 decades) dwarfs blood disorders (D50-D89, 4).
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max >= &(min * 4), "sizes not skewed: {sizes:?}");
    }

    #[test]
    fn icd10cm_reaches_paper_scale_collision_free() {
        // 93,830 is the ICD-10-CM code count the paper serves (§6.1).
        // `build()` rejects duplicate codes, so merely constructing the
        // ontology proves the grid is collision-free at paper scale.
        let o = generate_icd10cm_at_least(93_830, 13);
        assert!(o.num_concepts() >= 93_830, "got {}", o.num_concepts());
        let o2 = generate_icd10cm_at_least(93_830, 13);
        assert_eq!(o.num_concepts(), o2.num_concepts(), "deterministic");
        // Encounter leaves kicked in to reach paper scale: depth grows
        // by one (chapter) + one (encounter) over the classic profile.
        assert!(o.max_depth() <= 5);
        let enc = o
            .iter()
            .filter(|(_, c)| c.code.ends_with(['A', 'D', 'S']) && c.code.contains('.'))
            .count();
        assert!(enc > 0, "no encounter leaves at paper scale");
    }

    #[test]
    fn icd10cm_is_a_pure_function_of_its_config() {
        let cfg = Icd10CmGenConfig {
            categories: 120,
            seed: 23,
            encounter_leaves: true,
        };
        let a = generate_icd10cm(cfg);
        let b = generate_icd10cm(cfg);
        assert_eq!(a.num_concepts(), b.num_concepts());
        for (ia, ib) in a.iter().zip(b.iter()) {
            assert_eq!(ia.1.code, ib.1.code);
            assert_eq!(ia.1.canonical, ib.1.canonical);
        }
        // Encounter leaves triple the childless fine-grained codes.
        let without = generate_icd10cm(Icd10CmGenConfig {
            encounter_leaves: false,
            ..cfg
        });
        assert!(a.num_concepts() > without.num_concepts() * 2);
    }

    #[test]
    fn includes_anemia_block_at_full_size() {
        let o = generate(OntologyGenConfig {
            revision: IcdRevision::Icd10,
            categories: 500, // larger than the spec pool: keep everything
            seed: 3,
        });
        let has_anemia = o
            .iter()
            .any(|(_, c)| c.canonical.contains("iron deficiency anemia"));
        assert!(has_anemia);
    }
}
