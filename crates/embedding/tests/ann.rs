//! Integration + property tests for the hand-rolled HNSW index
//! ([`ncl_embedding::ann`]) against its exact-scan oracle.
//!
//! The contract under test (DESIGN.md §16):
//!
//! * **recall** — graph search at the default beam recovers ≥ the
//!   configured floor of the exact top-10 on random vector sets,
//!   including hostile ones (duplicate clusters, zero vectors,
//!   lane-straddling dimensionalities);
//! * **determinism** — same vectors + same config produce the same
//!   graph and the same search results across runs *and* across SIMD
//!   dispatch levels (all similarity math runs through the
//!   level-invariant `dot_relaxed` kernel);
//! * the exact scan itself is a true oracle: descending similarity,
//!   ties by ascending id.
//!
//! The `proptests` module name is load-bearing: CI's property-test leg
//! runs `cargo test --workspace proptests` and filters by that substring.

use ncl_embedding::ann::{AnnIndex, HnswConfig};
use ncl_embedding::ConceptVectors;
use ncl_tensor::Matrix;

/// SplitMix64 — deterministic test data without an RNG dependency.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(bits: u64) -> f32 {
    ((bits >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

/// Random vector set with a controllable fraction of duplicates and
/// zero rows — the shapes that defeat naive diversity pruning.
fn vector_set(n: usize, dims: usize, dup_every: usize, zero_every: usize, salt: u64) -> Matrix {
    let mut data = vec![0.0f32; n * dims];
    let proto: Vec<f32> = (0..dims)
        .map(|i| unit(mix(salt ^ 0xD0_0D ^ i as u64)))
        .collect();
    for r in 0..n {
        let row = &mut data[r * dims..(r + 1) * dims];
        if zero_every > 0 && r % zero_every == 0 {
            continue; // leave a zero row
        }
        if dup_every > 0 && r % dup_every == 0 {
            row.copy_from_slice(&proto);
            continue;
        }
        for (i, v) in row.iter_mut().enumerate() {
            *v = unit(mix(salt.wrapping_add((r * dims + i) as u64)));
        }
    }
    Matrix::from_vec(n, dims, data)
}

fn normalize(mut v: Vec<f32>) -> Vec<f32> {
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    for x in &mut v {
        *x /= n;
    }
    v
}

fn recall_at_10(idx: &AnnIndex, q: &[f32]) -> f64 {
    let (approx, _) = idx.search(q, 10, None);
    let (exact, _) = idx.exact_search(q, 10);
    let want: std::collections::HashSet<u32> = exact.iter().map(|h| h.0).collect();
    if want.is_empty() {
        return 1.0;
    }
    approx.iter().filter(|h| want.contains(&h.0)).count() as f64 / want.len() as f64
}

/// Tie-aware recall@10: a returned neighbour counts as correct when its
/// similarity reaches the oracle's 10th-best. With duplicate clusters
/// wider than k the id-set definition punishes returning a *different but
/// equally similar* duplicate, which says nothing about graph quality.
fn tie_aware_recall_at_10(idx: &AnnIndex, q: &[f32]) -> f64 {
    let (approx, _) = idx.search(q, 10, None);
    let (exact, _) = idx.exact_search(q, 10);
    let Some(&(_, floor)) = exact.last() else {
        return 1.0;
    };
    approx.iter().filter(|h| h.1 >= floor).count() as f64 / exact.len() as f64
}

fn graph_config(seed: u64) -> HnswConfig {
    HnswConfig {
        seed,
        brute_force_below: 0,
        ..HnswConfig::default()
    }
}

#[test]
fn recall_floor_on_clean_random_set() {
    let cv = ConceptVectors::from_rows(vector_set(3_000, 32, 0, 0, 11));
    let idx = AnnIndex::build(&cv, graph_config(1));
    let mut total = 0.0;
    let queries = 40;
    for qi in 0..queries {
        let q = normalize(cv.row((qi * 71) % cv.len()).to_vec());
        total += recall_at_10(&idx, &q);
    }
    let mean = total / queries as f64;
    assert!(mean >= 0.95, "mean recall@10 {mean} < 0.95");
}

#[test]
fn search_stats_report_graph_traversal() {
    let cv = ConceptVectors::from_rows(vector_set(3_000, 32, 0, 0, 12));
    let idx = AnnIndex::build(&cv, graph_config(2));
    let q = normalize(cv.row(123).to_vec());
    let (_, stats) = idx.search(&q, 10, None);
    assert!(!stats.exact);
    assert!(stats.nodes_visited > 0);
    assert!(stats.distance_evals > 0);
    assert_eq!(stats.ef_search, 96, "default beam width");
    assert!(
        stats.distance_evals < 3_000 / 2,
        "graph search should evaluate far fewer distances than the scan \
         ({} of 3000)",
        stats.distance_evals
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    // Each case builds an index from scratch (O(n·ef) dots), so keep the
    // case count modest; the ranges still sweep lane-straddling dims and
    // hostile duplicate/zero mixes.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Recall@10 vs the exact oracle stays above the floor on random
        /// sets laced with duplicate clusters and zero vectors, across
        /// lane-straddling dimensionalities (7/9/17/33 cross the 4- and
        /// 8-wide SIMD lane and the virtual-8 relaxed layout).
        #[test]
        fn hnsw_recall_floor_random_sets(
            n in 400usize..900,
            dims_pick in 0usize..5,
            dup_every in 0usize..20,
            zero_every in 0usize..30,
            salt in 0u64..1_000,
        ) {
            let dims = [7usize, 9, 16, 17, 33][dims_pick];
            let dup = if dup_every < 5 { 0 } else { dup_every };
            let zero = if zero_every < 7 { 0 } else { zero_every };
            let cv = ConceptVectors::from_rows(vector_set(n, dims, dup, zero, salt));
            let idx = AnnIndex::build(&cv, graph_config(salt ^ 0xA11CE));
            let mut total = 0.0;
            let queries = 12usize;
            for qi in 0..queries {
                // Mix member and perturbed-member queries.
                let base = cv.row((qi * 97) % n).to_vec();
                let q = if qi % 3 == 0 {
                    let jitter: Vec<f32> = base
                        .iter()
                        .enumerate()
                        .map(|(i, v)| v + 0.05 * unit(mix(salt ^ (qi * 31 + i) as u64)))
                        .collect();
                    normalize(jitter)
                } else {
                    normalize(base)
                };
                total += tie_aware_recall_at_10(&idx, &q);
            }
            let mean = total / queries as f64;
            prop_assert!(
                mean >= 0.9,
                "mean tie-aware recall@10 {} below floor \
                 (n={} dims={} dup={} zero={} salt={})",
                mean, n, dims, dup, zero, salt
            );
        }

        /// Same vectors + same seed ⇒ identical graph and bit-identical
        /// search results, across independent builds and across every
        /// supported SIMD dispatch level.
        #[test]
        fn hnsw_deterministic_across_runs_and_levels(
            n in 200usize..500,
            dims_pick in 0usize..3,
            salt in 0u64..1_000,
        ) {
            use ncl_tensor::simd::{self, Level};
            let dims = [9usize, 17, 24][dims_pick];
            let cv = ConceptVectors::from_rows(vector_set(n, dims, 11, 0, salt));
            let q = normalize(cv.row(n / 2).to_vec());
            let reference = simd::with_level(Level::Scalar, || {
                let idx = AnnIndex::build(&cv, graph_config(salt));
                idx.search(&q, 10, None)
            });
            for level in simd::supported_levels() {
                let (hits, stats) = simd::with_level(level, || {
                    let idx = AnnIndex::build(&cv, graph_config(salt));
                    idx.search(&q, 10, None)
                });
                prop_assert_eq!(stats, reference.1);
                prop_assert_eq!(hits.len(), reference.0.len());
                for (g, w) in hits.iter().zip(reference.0.iter()) {
                    prop_assert_eq!(g.0, w.0);
                    prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
                }
            }
        }

        /// The exact scan is a well-formed oracle: descending similarity
        /// with ties broken by ascending id, and it returns min(k, n)
        /// hits for any k.
        #[test]
        fn exact_scan_is_sorted_and_complete(
            n in 1usize..300,
            k in 0usize..40,
            salt in 0u64..1_000,
        ) {
            let cv = ConceptVectors::from_rows(vector_set(n, 9, 6, 9, salt));
            let idx = AnnIndex::build(&cv, HnswConfig::default());
            let q = normalize(cv.row(0).to_vec());
            let (hits, stats) = idx.exact_search(&q, k);
            prop_assert!(stats.exact);
            prop_assert_eq!(stats.distance_evals, n as u64);
            prop_assert_eq!(hits.len(), k.min(n));
            for w in hits.windows(2) {
                let ordered = w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0);
                prop_assert!(ordered, "oracle out of order: {:?}", w);
            }
        }
    }
}
