//! Hand-rolled, offline-safe HNSW over concept vectors.
//!
//! A Hierarchical Navigable Small World graph (Malkov & Yashunin 2016)
//! built with no external dependencies, used as the approximate
//! nearest-neighbour backend for embedding-based Phase I retrieval.
//! Similarity is cosine: rows arrive L2-normalized from
//! [`ConceptVectors`], so every comparison is a single dot product,
//! dispatched through [`simd::dot_relaxed`] — the fixed-8-lane relaxed
//! kernel that is **bit-identical across SIMD dispatch levels**
//! (DESIGN.md §14). Determinism is a first-class property:
//!
//! * level assignment draws from SplitMix64 seeded with
//!   `config.seed ^ node_id` — no RNG state threads through the build,
//!   so insertion order plus seed fully determine the graph;
//! * every ordering comparison breaks ties by (similarity desc via
//!   `total_cmp`, id asc) — no `partial_cmp` unwraps, no hash-map
//!   iteration order anywhere;
//! * all similarities share one kernel whose bits do not depend on the
//!   dispatch level, so the same build on an AVX2 host and under
//!   `NCL_FORCE_SCALAR=1` produces the same graph and the same search
//!   results, bit for bit.
//!
//! Small indexes skip graph construction entirely: below
//! [`HnswConfig::brute_force_below`] the exact scan is both faster and
//! trivially exact, so [`AnnIndex::search`] degrades to
//! [`AnnIndex::exact_search`] (flagged in [`SearchStats::exact`]). The
//! exact scan doubles as the correctness oracle for recall tests.

use crate::concept::ConceptVectors;
use ncl_tensor::simd;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Build/search knobs for [`AnnIndex`].
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Target out-degree per node on upper layers (layer 0 keeps `2m`).
    pub m: usize,
    /// Beam width while inserting (paper's `efConstruction`).
    pub ef_construction: usize,
    /// Default beam width while searching (paper's `ef`); raised to `k`
    /// when a caller asks for more results than the beam.
    pub ef_search: usize,
    /// Seed for the deterministic level assignment.
    pub seed: u64,
    /// Below this many vectors the index skips graph construction and
    /// serves exact scans (small ontologies don't amortize the graph).
    pub brute_force_below: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            ef_search: 96,
            seed: 0x5EED_CAFE_F00D_D15C,
            brute_force_below: 256,
        }
    }
}

/// Per-search counters, surfaced into `LinkTrace` by the serving layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Graph nodes whose neighbourhoods were expanded.
    pub nodes_visited: u64,
    /// Dot products evaluated (equals the collection size for exact scans).
    pub distance_evals: u64,
    /// Effective beam width used (0 for exact scans).
    pub ef_search: u32,
    /// Whether the answer came from the exact scan rather than the graph.
    pub exact: bool,
}

/// Search-frontier entry ordered by (similarity desc, id asc): the
/// *greatest* `Cand` is the most similar, smallest-id candidate, so a
/// `BinaryHeap<Cand>` pops best-first and `Reverse<Cand>` worst-first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    sim: f32,
    id: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim
            .total_cmp(&other.sim)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// SplitMix64 finalizer: one multiply-xor cascade per draw, full-period,
/// and stateless — `mix(seed ^ id)` is the whole "RNG".
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hard cap on assigned levels; with `mL = 1/ln(16)` the odds of
/// exceeding 15 are ~16^-15 — the cap only bounds worst-case memory.
const MAX_LEVEL: usize = 15;

/// A deterministic HNSW index over L2-normalized concept vectors.
///
/// Bit-identical duplicate vectors are collapsed to one **graph node**
/// each before construction: a cluster of duplicates otherwise turns
/// into a near-clique whose neighbour lists hold nothing but other
/// duplicates (every duplicate is "diverse" with respect to the rest),
/// and searches that enter the clique cannot leave it. The graph is
/// built over unique vectors only; searches expand each unique hit back
/// to its duplicate ids (ascending) when collecting top-k. The exact
/// scan still ranges over all original ids.
#[derive(Debug, Clone)]
pub struct AnnIndex {
    config: HnswConfig,
    dims: usize,
    /// Row-major `n × dims` normalized vectors, original id order.
    data: Vec<f32>,
    n: usize,
    /// Representative original id per graph node (first occurrence).
    uniq: Vec<u32>,
    /// All original ids sharing each graph node's vector, ascending.
    group: Vec<Vec<u32>>,
    /// `neighbors[node][level]` → adjacent graph nodes (level ≤ node level).
    neighbors: Vec<Vec<Vec<u32>>>,
    entry: Option<u32>,
    max_level: usize,
    /// True when the index was built below the brute-force threshold and
    /// holds no graph.
    brute_force: bool,
}

impl AnnIndex {
    /// Builds the index over `vectors` by sequential insertion in id
    /// order. The build is deterministic: same vectors + same config ⇒
    /// same graph, at every SIMD dispatch level.
    pub fn build(vectors: &ConceptVectors, config: HnswConfig) -> Self {
        assert!(config.m >= 2, "hnsw: m must be at least 2");
        assert!(
            config.ef_construction >= config.m,
            "hnsw: ef_construction must be at least m"
        );
        let n = vectors.len();
        let dims = vectors.dims();
        let data = vectors.matrix().as_slice().to_vec();
        let mut index = Self {
            config,
            dims,
            data,
            n,
            uniq: Vec::new(),
            group: Vec::new(),
            neighbors: Vec::new(),
            entry: None,
            max_level: 0,
            brute_force: n < config.brute_force_below,
        };
        if index.brute_force {
            return index;
        }
        // Collapse bit-identical rows; BTreeMap keeps this deterministic.
        let mut seen: std::collections::BTreeMap<Vec<u32>, usize> =
            std::collections::BTreeMap::new();
        for id in 0..n as u32 {
            let bits: Vec<u32> = index.vec_of(id).iter().map(|v| v.to_bits()).collect();
            match seen.entry(bits) {
                std::collections::btree_map::Entry::Occupied(e) => {
                    index.group[*e.get()].push(id);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(index.uniq.len());
                    index.uniq.push(id);
                    index.group.push(vec![id]);
                }
            }
        }
        let u_n = index.uniq.len();
        index.neighbors = Vec::with_capacity(u_n);
        let mut scratch = Scratch::new(u_n);
        for node in 0..u_n as u32 {
            index.insert(node, &mut scratch);
        }
        index
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vector dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether searches run the exact scan (no graph was built).
    pub fn is_brute_force(&self) -> bool {
        self.brute_force
    }

    /// The vector stored for an **original** id.
    fn vec_of(&self, id: u32) -> &[f32] {
        let i = id as usize * self.dims;
        &self.data[i..i + self.dims]
    }

    /// The vector backing a **graph node** (its representative id's row).
    fn vec(&self, node: u32) -> &[f32] {
        self.vec_of(self.uniq[node as usize])
    }

    /// The deterministic level for graph node `id`: `floor(-ln(u) · mL)`
    /// with `u ∈ (0, 1]` drawn from `mix(seed ^ id)` and `mL = 1/ln(m)`.
    fn level_for(&self, id: u32) -> usize {
        let bits = mix(self.config.seed ^ u64::from(id));
        // 53 high bits → u in [0, 1); shift to (0, 1] so ln never sees 0.
        let u = ((bits >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let ml = 1.0 / (self.config.m as f64).ln();
        ((-u.ln() * ml) as usize).min(MAX_LEVEL)
    }

    fn insert(&mut self, id: u32, scratch: &mut Scratch) {
        let level = self.level_for(id);
        self.neighbors.push(vec![Vec::new(); level + 1]);
        let Some(mut ep) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return;
        };
        let q = self.vec(id).to_vec();
        let mut stats = SearchStats::default();
        // Greedy descent through layers above the node's own top level.
        for l in (level + 1..=self.max_level).rev() {
            ep = self.greedy_step(&q, ep, l, &mut stats);
        }
        // Beam search + diversity selection on each shared layer.
        for l in (0..=level.min(self.max_level)).rev() {
            let w = self.search_layer(
                &q,
                &[ep],
                self.config.ef_construction,
                l,
                scratch,
                &mut stats,
            );
            let cap = if l == 0 {
                2 * self.config.m
            } else {
                self.config.m
            };
            let selected = self.select_neighbors(&w, self.config.m);
            if let Some(best) = w.first() {
                ep = best.id;
            }
            for &nb in &selected {
                self.neighbors[id as usize][l].push(nb);
                self.neighbors[nb as usize][l].push(id);
                if self.neighbors[nb as usize][l].len() > cap {
                    self.prune(nb, l, cap);
                }
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
    }

    /// Re-selects `node`'s layer-`l` neighbour list down to `cap` using
    /// the same diversity heuristic as insertion.
    fn prune(&mut self, node: u32, l: usize, cap: usize) {
        let nv = self.vec(node);
        let mut cands: Vec<Cand> = self.neighbors[node as usize][l]
            .iter()
            .map(|&nb| Cand {
                sim: simd::dot_relaxed(nv, self.vec(nb)),
                id: nb,
            })
            .collect();
        cands.sort_by(|a, b| b.cmp(a));
        cands.dedup_by_key(|c| c.id);
        let kept = self.select_neighbors(&cands, cap);
        self.neighbors[node as usize][l] = kept;
    }

    /// The neighbour-diversity heuristic (Malkov Alg. 4): walk candidates
    /// best-first and keep `c` only if it is closer to the query point
    /// than to every already-kept neighbour — spreading edges across
    /// directions instead of clustering them. Pruned candidates backfill
    /// remaining slots (`keepPrunedConnections`), which keeps duplicate /
    /// co-located vectors connected instead of orphaned.
    fn select_neighbors(&self, cands: &[Cand], m: usize) -> Vec<u32> {
        let mut kept: Vec<Cand> = Vec::with_capacity(m);
        let mut pruned: Vec<u32> = Vec::new();
        for &c in cands {
            if kept.len() >= m {
                break;
            }
            let cv = self.vec(c.id);
            let diverse = kept
                .iter()
                .all(|r| simd::dot_relaxed(cv, self.vec(r.id)) <= c.sim);
            if diverse {
                kept.push(c);
            } else {
                pruned.push(c.id);
            }
        }
        let mut out: Vec<u32> = kept.into_iter().map(|c| c.id).collect();
        for id in pruned {
            if out.len() >= m {
                break;
            }
            out.push(id);
        }
        out
    }

    /// One-at-a-time greedy walk on layer `l`: hop to the best neighbour
    /// until no neighbour improves on the current node.
    fn greedy_step(&self, q: &[f32], mut ep: u32, l: usize, stats: &mut SearchStats) -> u32 {
        let mut best = Cand {
            sim: simd::dot_relaxed(q, self.vec(ep)),
            id: ep,
        };
        stats.distance_evals += 1;
        loop {
            let mut improved = false;
            stats.nodes_visited += 1;
            for &nb in &self.neighbors[ep as usize][l] {
                let c = Cand {
                    sim: simd::dot_relaxed(q, self.vec(nb)),
                    id: nb,
                };
                stats.distance_evals += 1;
                if c > best {
                    best = c;
                    improved = true;
                }
            }
            if !improved {
                return best.id;
            }
            ep = best.id;
        }
    }

    /// Beam search on one layer (Malkov Alg. 2): expand the closest
    /// frontier node until it is worse than the worst of the `ef` best
    /// found so far. Returns the best candidates sorted (sim desc, id
    /// asc).
    fn search_layer(
        &self,
        q: &[f32],
        entry_points: &[u32],
        ef: usize,
        l: usize,
        scratch: &mut Scratch,
        stats: &mut SearchStats,
    ) -> Vec<Cand> {
        scratch.reset();
        let mut frontier: BinaryHeap<Cand> = BinaryHeap::new();
        // `found` is a min-heap (worst on top) bounded to `ef`.
        let mut found: BinaryHeap<std::cmp::Reverse<Cand>> = BinaryHeap::new();
        for &ep in entry_points {
            if scratch.visit(ep) {
                continue;
            }
            let c = Cand {
                sim: simd::dot_relaxed(q, self.vec(ep)),
                id: ep,
            };
            stats.distance_evals += 1;
            frontier.push(c);
            found.push(std::cmp::Reverse(c));
        }
        while let Some(c) = frontier.pop() {
            let worst = found.peek().map(|r| r.0).unwrap_or(Cand {
                sim: f32::NEG_INFINITY,
                id: u32::MAX,
            });
            if found.len() >= ef && c < worst {
                break;
            }
            stats.nodes_visited += 1;
            for &nb in &self.neighbors[c.id as usize][l] {
                if scratch.visit(nb) {
                    continue;
                }
                let nc = Cand {
                    sim: simd::dot_relaxed(q, self.vec(nb)),
                    id: nb,
                };
                stats.distance_evals += 1;
                let worst = found.peek().map(|r| r.0).unwrap_or(Cand {
                    sim: f32::NEG_INFINITY,
                    id: u32::MAX,
                });
                if found.len() < ef || nc > worst {
                    frontier.push(nc);
                    found.push(std::cmp::Reverse(nc));
                    if found.len() > ef {
                        found.pop();
                    }
                }
            }
        }
        let mut out: Vec<Cand> = found.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// Approximate top-`k` by cosine for a normalized query. Small or
    /// graph-less indexes serve the exact scan instead (see
    /// [`SearchStats::exact`]). `ef` falls back to
    /// [`HnswConfig::ef_search`] when `None`, and is never below `k`.
    pub fn search(&self, q: &[f32], k: usize, ef: Option<usize>) -> (Vec<(u32, f32)>, SearchStats) {
        assert_eq!(q.len(), self.dims, "hnsw: query dimension mismatch");
        if self.brute_force {
            return self.exact_search(q, k);
        }
        let Some(entry) = self.entry else {
            return (Vec::new(), SearchStats::default());
        };
        let ef = ef.unwrap_or(self.config.ef_search).max(k).max(1);
        let mut stats = SearchStats {
            ef_search: ef as u32,
            ..SearchStats::default()
        };
        let mut scratch = Scratch::new(self.uniq.len());
        let mut ep = entry;
        for l in (1..=self.max_level).rev() {
            ep = self.greedy_step(q, ep, l, &mut stats);
        }
        let w = self.search_layer(q, &[ep], ef, 0, &mut scratch, &mut stats);
        // Expand each unique graph node back to its duplicate ids.
        let mut hits: Vec<(u32, f32)> = Vec::with_capacity(k);
        'expand: for c in w {
            for &id in &self.group[c.id as usize] {
                if hits.len() >= k {
                    break 'expand;
                }
                hits.push((id, c.sim));
            }
        }
        (hits, stats)
    }

    /// Exact top-`k` by full scan — the correctness oracle for the graph
    /// and the serving path for small ontologies.
    pub fn exact_search(&self, q: &[f32], k: usize) -> (Vec<(u32, f32)>, SearchStats) {
        assert_eq!(q.len(), self.dims, "hnsw: query dimension mismatch");
        let mut all: Vec<Cand> = (0..self.n as u32)
            .map(|id| Cand {
                sim: simd::dot_relaxed(q, self.vec_of(id)),
                id,
            })
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        let stats = SearchStats {
            distance_evals: self.n as u64,
            exact: true,
            ..SearchStats::default()
        };
        (all.into_iter().map(|c| (c.id, c.sim)).collect(), stats)
    }
}

/// Reusable visited-set: epoch-stamped so `reset` is O(1) instead of a
/// full clear, and iteration order never depends on a hash function.
#[derive(Debug)]
struct Scratch {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `id` visited; returns whether it already was.
    fn visit(&mut self, id: u32) -> bool {
        let seen = self.stamp[id as usize] == self.epoch;
        self.stamp[id as usize] = self.epoch;
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_tensor::Matrix;

    /// Deterministic pseudo-random unit-ish vectors.
    fn random_vectors(n: usize, dims: usize, salt: u64) -> ConceptVectors {
        let mut data = Vec::with_capacity(n * dims);
        for i in 0..n * dims {
            let bits = mix(salt.wrapping_mul(0x1234_5678).wrapping_add(i as u64));
            data.push(((bits >> 40) as f32 / (1u64 << 24) as f32) - 0.5);
        }
        ConceptVectors::from_rows(Matrix::from_vec(n, dims, data))
    }

    fn recall_at(k: usize, got: &[(u32, f32)], truth: &[(u32, f32)]) -> f64 {
        let want: std::collections::HashSet<u32> = truth.iter().take(k).map(|h| h.0).collect();
        if want.is_empty() {
            return 1.0;
        }
        let hit = got.iter().take(k).filter(|h| want.contains(&h.0)).count();
        hit as f64 / want.len() as f64
    }

    fn graph_config() -> HnswConfig {
        HnswConfig {
            brute_force_below: 0,
            ..HnswConfig::default()
        }
    }

    #[test]
    fn empty_index_returns_nothing() {
        let cv = random_vectors(0, 8, 1);
        let idx = AnnIndex::build(&cv, HnswConfig::default());
        let q = vec![1.0; 8];
        let (hits, stats) = idx.search(&normalize(q), 5, None);
        assert!(hits.is_empty());
        assert_eq!(stats.distance_evals, 0);
    }

    fn normalize(mut v: Vec<f32>) -> Vec<f32> {
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        for x in &mut v {
            *x /= n;
        }
        v
    }

    #[test]
    fn small_index_is_brute_force_and_exact() {
        let cv = random_vectors(100, 16, 2);
        let idx = AnnIndex::build(&cv, HnswConfig::default());
        assert!(idx.is_brute_force());
        let q = normalize(cv.row(7).to_vec());
        let (hits, stats) = idx.search(&q, 10, None);
        assert!(stats.exact);
        assert_eq!(hits[0].0, 7, "self-query must return itself first");
    }

    #[test]
    fn graph_recall_on_random_set() {
        let cv = random_vectors(2_000, 24, 3);
        let idx = AnnIndex::build(&cv, graph_config());
        assert!(!idx.is_brute_force());
        let mut total = 0.0;
        let queries = 50;
        for qi in 0..queries {
            let q = normalize(cv.row(qi * 37 % 2_000).to_vec());
            let (approx, stats) = idx.search(&q, 10, None);
            let (exact, _) = idx.exact_search(&q, 10);
            assert!(!stats.exact);
            assert!(stats.distance_evals < 2_000, "graph should beat full scan");
            total += recall_at(10, &approx, &exact);
        }
        assert!(
            total / queries as f64 >= 0.95,
            "mean recall@10 {} < 0.95",
            total / queries as f64
        );
    }

    #[test]
    fn build_and_search_deterministic_across_runs() {
        let cv = random_vectors(600, 12, 4);
        let a = AnnIndex::build(&cv, graph_config());
        let b = AnnIndex::build(&cv, graph_config());
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.entry, b.entry);
        let q = normalize(cv.row(5).to_vec());
        let (ha, sa) = a.search(&q, 10, None);
        let (hb, sb) = b.search(&q, 10, None);
        assert_eq!(ha, hb);
        assert_eq!(sa, sb);
    }

    #[test]
    fn deterministic_across_simd_levels() {
        use ncl_tensor::simd::{self, Level};
        let cv = random_vectors(500, 19, 5); // 19 straddles lane widths
        let reference = simd::with_level(Level::Scalar, || {
            let idx = AnnIndex::build(&cv, graph_config());
            let q = normalize(cv.row(3).to_vec());
            let (hits, _) = idx.search(&q, 10, None);
            (idx.neighbors.clone(), hits)
        });
        for level in simd::supported_levels() {
            let got = simd::with_level(level, || {
                let idx = AnnIndex::build(&cv, graph_config());
                let q = normalize(cv.row(3).to_vec());
                let (hits, _) = idx.search(&q, 10, None);
                (idx.neighbors.clone(), hits)
            });
            assert_eq!(got.0, reference.0, "graph differs at {level:?}");
            for ((gi, gs), (ri, rs)) in got.1.iter().zip(reference.1.iter()) {
                assert_eq!(gi, ri, "hit ids differ at {level:?}");
                assert_eq!(gs.to_bits(), rs.to_bits(), "hit sims differ at {level:?}");
            }
        }
    }

    #[test]
    fn duplicates_and_zeros_stay_reachable() {
        // 40 copies of one vector, 40 zeros, plus random fill: the
        // keepPruned backfill must keep duplicate clusters connected.
        let dims = 16;
        let mut data = Vec::new();
        let proto: Vec<f32> = (0..dims).map(|i| (i as f32 * 0.37).sin()).collect();
        for _ in 0..40 {
            data.extend_from_slice(&proto);
        }
        data.extend(std::iter::repeat_n(0.0, 40 * dims));
        let fill = random_vectors(400, dims, 6);
        data.extend_from_slice(fill.matrix().as_slice());
        let cv = ConceptVectors::from_rows(Matrix::from_vec(480, dims, data));
        let idx = AnnIndex::build(&cv, graph_config());
        let q = normalize(proto.clone());
        let (hits, _) = idx.search(&q, 10, None);
        let dup_hits = hits.iter().filter(|h| h.0 < 40).count();
        assert!(
            dup_hits >= 9,
            "only {dup_hits}/10 hits landed in the duplicate cluster"
        );
    }

    #[test]
    fn exact_orders_ties_by_id() {
        let dims = 4;
        let mut data = Vec::new();
        for _ in 0..10 {
            data.extend_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        }
        let cv = ConceptVectors::from_rows(Matrix::from_vec(10, dims, data));
        let idx = AnnIndex::build(&cv, HnswConfig::default());
        let (hits, _) = idx.exact_search(&[1.0, 0.0, 0.0, 0.0], 5);
        let ids: Vec<u32> = hits.iter().map(|h| h.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn level_assignment_matches_formula_and_is_bounded() {
        let cv = random_vectors(300, 8, 7);
        let idx = AnnIndex::build(&cv, graph_config());
        let mut level0 = 0;
        for id in 0..300u32 {
            let l = idx.level_for(id);
            assert!(l <= MAX_LEVEL);
            assert_eq!(idx.neighbors[id as usize].len(), l + 1);
            if l == 0 {
                level0 += 1;
            }
        }
        // With mL = 1/ln(16), ~93.75% of nodes live only on layer 0.
        assert!(level0 > 250, "level distribution skewed: {level0}/300 at 0");
    }

    #[test]
    fn degree_caps_hold() {
        let cv = random_vectors(800, 10, 8);
        let cfg = graph_config();
        let idx = AnnIndex::build(&cv, cfg);
        for (id, levels) in idx.neighbors.iter().enumerate() {
            for (l, nbs) in levels.iter().enumerate() {
                let cap = if l == 0 { 2 * cfg.m } else { cfg.m };
                assert!(
                    nbs.len() <= cap,
                    "node {id} layer {l} degree {} > cap {cap}",
                    nbs.len()
                );
                for &nb in nbs {
                    assert_ne!(nb as usize, id, "self-loop at node {id}");
                }
            }
        }
    }
}
