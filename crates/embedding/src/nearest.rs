//! Nearest-word search in the embedding space.
//!
//! Query rewriting (§5, Phase I, Eq. 13) replaces each out-of-vocabulary
//! query word with `w* = argmax_{w'} cosine(w', w)` over the embedding
//! vocabulary `Ω'`. Concept-id tokens injected during pre-training must be
//! excluded, as must the special tokens, hence the filter mask.

use ncl_tensor::{simd, Matrix, Vector};

/// A cosine nearest-neighbour index over embedding rows.
///
/// For the paper's vocabulary sizes a flat scan is exact and fast enough
/// (the OR segment of Figure 11 is a small fraction of total query time);
/// rows are pre-normalised so each query costs one dot product per word.
///
/// The normalized rows are stored **transposed** (`wt[k * rows + r]` =
/// component `k` of row `r`) so one [`simd::colmajor_gemv_acc`] call
/// computes every row's dot product against a query. That kernel keeps a
/// fresh accumulator per output and walks `k` ascending, i.e. exactly the
/// sequential `dot += a * b` fold of a per-row scalar loop — so the scores
/// are bit-identical to the pre-SIMD scan at every dispatch level.
#[derive(Debug, Clone)]
pub struct NearestWords {
    /// Transposed normalized embedding table, `dims × rows` column-major
    /// by original row id.
    wt: Vec<f32>,
    rows: usize,
    dims: usize,
    allowed: Vec<bool>,
}

impl NearestWords {
    /// Builds the index over `embeddings` (one row per word). `allowed`
    /// masks which rows may be returned (length must match); pass
    /// `None` to allow all rows except ids `0..4` (the special tokens).
    pub fn new(embeddings: &Matrix, allowed: Option<Vec<bool>>) -> Self {
        let rows = embeddings.rows();
        let dims = embeddings.cols();
        let allowed = allowed.unwrap_or_else(|| (0..rows).map(|i| i >= 4).collect());
        assert_eq!(allowed.len(), rows, "nearest: mask length mismatch");
        let mut wt = vec![0.0f32; rows * dims];
        for r in 0..rows {
            let row = embeddings.row(r);
            let norm = embeddings.row_vector(r).norm();
            let inv = if norm > f32::EPSILON { 1.0 / norm } else { 1.0 };
            for (k, &v) in row.iter().enumerate() {
                wt[k * rows + r] = v * inv;
            }
        }
        Self {
            wt,
            rows,
            dims,
            allowed,
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// All-rows cosine scores for a normalized query, via one
    /// column-major GEMV over the transposed table.
    fn dots(&self, q: &Vector) -> Vec<f32> {
        assert_eq!(q.len(), self.dims, "nearest: query dimension mismatch");
        let mut dots = vec![0.0f32; self.rows];
        simd::colmajor_gemv_acc(&mut dots, q.as_slice(), &self.wt);
        dots
    }

    /// The single nearest allowed word to `query` (excluding
    /// `exclude_id`, typically the query word itself), with its cosine.
    pub fn nearest(&self, query: &Vector, exclude_id: Option<u32>) -> Option<(u32, f32)> {
        self.top_k(query, 1, exclude_id).into_iter().next()
    }

    /// The `k` nearest allowed words, best first.
    pub fn top_k(&self, query: &Vector, k: usize, exclude_id: Option<u32>) -> Vec<(u32, f32)> {
        let qnorm = query.norm();
        if qnorm <= f32::EPSILON || k == 0 {
            return Vec::new();
        }
        let mut q = query.clone();
        q.scale(1.0 / qnorm);
        let dots = self.dots(&q);
        let mut hits: Vec<(u32, f32)> = Vec::new();
        for (r, &dot) in dots.iter().enumerate() {
            if !self.allowed[r] || Some(r as u32) == exclude_id {
                continue;
            }
            hits.push((r as u32, dot));
        }
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        hits.truncate(k);
        hits
    }

    /// Resolves many queries in one pass, returning what
    /// [`NearestWords::nearest`] would return for each — bit-identically.
    ///
    /// Each query makes one SIMD GEMV pass over the transposed table, so
    /// the per-row accumulation order matches the single-query path
    /// exactly; the argmax scan then visits rows in ascending id order,
    /// where a strict improvement test reproduces the (cosine desc, id
    /// asc) tie-break of the sorted single-query path.
    pub fn nearest_batch(
        &self,
        queries: &[Vector],
        exclude_ids: &[Option<u32>],
    ) -> Vec<Option<(u32, f32)>> {
        assert_eq!(
            queries.len(),
            exclude_ids.len(),
            "nearest_batch: queries/exclude length mismatch"
        );
        queries
            .iter()
            .zip(exclude_ids)
            .map(|(query, exclude)| {
                // Pre-normalise exactly as `top_k` does; zero-norm
                // queries resolve to None without touching the matrix.
                let qnorm = query.norm();
                if qnorm <= f32::EPSILON {
                    return None;
                }
                let mut q = query.clone();
                q.scale(1.0 / qnorm);
                let dots = self.dots(&q);
                let mut best: Option<(u32, f32)> = None;
                for (r, &dot) in dots.iter().enumerate() {
                    if !self.allowed[r] || Some(r as u32) == *exclude {
                        continue;
                    }
                    if best.is_none_or(|(_, bd)| dot > bd) {
                        best = Some((r as u32, dot));
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_index() -> NearestWords {
        // ids: 0..4 specials (never returned), 4..7 real words.
        let rows = vec![
            0.0, 0.0, // specials
            0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, // 4
            0.9, 0.1, // 5
            0.0, 1.0, // 6
        ];
        NearestWords::new(&Matrix::from_vec(7, 2, rows), None)
    }

    #[test]
    fn nearest_finds_most_aligned() {
        let idx = toy_index();
        let (id, sim) = idx
            .nearest(&Vector::from_slice(&[1.0, 0.05]), None)
            .unwrap();
        assert_eq!(id, 4);
        assert!(sim > 0.99);
    }

    #[test]
    fn exclude_self() {
        let idx = toy_index();
        let (id, _) = idx
            .nearest(&Vector::from_slice(&[1.0, 0.0]), Some(4))
            .unwrap();
        assert_eq!(id, 5);
    }

    #[test]
    fn specials_never_returned() {
        let idx = toy_index();
        for (id, _) in idx.top_k(&Vector::from_slice(&[1.0, 1.0]), 10, None) {
            assert!(id >= 4);
        }
    }

    #[test]
    fn custom_mask_respected() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let idx = NearestWords::new(&m, Some(vec![false, true]));
        let hits = idx.top_k(&Vector::from_slice(&[1.0, 0.0]), 2, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn zero_query_returns_nothing() {
        let idx = toy_index();
        assert!(idx.nearest(&Vector::zeros(2), None).is_none());
    }

    #[test]
    fn top_k_ordering() {
        let idx = toy_index();
        let hits = idx.top_k(&Vector::from_slice(&[1.0, 0.0]), 3, None);
        assert_eq!(hits[0].0, 4);
        assert_eq!(hits[1].0, 5);
        assert_eq!(hits[2].0, 6);
        assert!(hits[0].1 >= hits[1].1 && hits[1].1 >= hits[2].1);
    }

    #[test]
    fn batch_matches_singles_bit_for_bit() {
        let idx = toy_index();
        let queries = vec![
            Vector::from_slice(&[1.0, 0.05]),
            Vector::from_slice(&[1.0, 0.0]),
            Vector::zeros(2),
            Vector::from_slice(&[0.3, 0.7]),
        ];
        let excludes = vec![None, Some(4), None, Some(6)];
        let batch = idx.nearest_batch(&queries, &excludes);
        for ((q, ex), got) in queries.iter().zip(&excludes).zip(&batch) {
            let single = idx.nearest(q, *ex);
            assert_eq!(single.map(|(id, _)| id), got.map(|(id, _)| id));
            assert_eq!(
                single.map(|(_, c)| c.to_bits()),
                got.map(|(_, c)| c.to_bits())
            );
        }
    }

    #[test]
    fn batch_spanning_many_row_blocks() {
        // 200 rows > the 64-row block, with exact duplicates so the
        // lowest-id tie-break is exercised across block boundaries.
        let dim = 3;
        let mut data = Vec::with_capacity(200 * dim);
        for r in 0..200 {
            let angle = (r % 50) as f32 * 0.1;
            data.extend_from_slice(&[angle.cos(), angle.sin(), 0.25]);
        }
        let idx = NearestWords::new(&Matrix::from_vec(200, dim, data), None);
        let queries: Vec<Vector> = (0..7)
            .map(|i| Vector::from_slice(&[1.0, i as f32 * 0.3, 0.1]))
            .collect();
        let excludes = vec![None; queries.len()];
        let batch = idx.nearest_batch(&queries, &excludes);
        for (q, got) in queries.iter().zip(&batch) {
            let single = idx.nearest(q, None);
            assert_eq!(single.map(|(id, _)| id), got.map(|(id, _)| id));
            assert_eq!(
                single.map(|(_, c)| c.to_bits()),
                got.map(|(_, c)| c.to_bits())
            );
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let idx = toy_index();
        assert!(idx.nearest_batch(&[], &[]).is_empty());
    }
}
