//! Concept-level dense vectors for embedding-based retrieval.
//!
//! Phase I retrieval in the paper is keyword TF-IDF, which forces every
//! vocabulary-mismatch query through the OOV-rewrite machinery before it
//! can match anything. Dense retrieval sidesteps that: each concept gets
//! one vector derived from the word embeddings of its name tokens
//! (mean-pooled, the standard bag-of-embeddings composition), queries get
//! the same treatment, and candidate concepts fall out of a
//! nearest-neighbour search (see [`crate::ann`]).
//!
//! Two builders are provided:
//!
//! * [`ConceptVectors::mean_pooled`] — composes each concept from the
//!   CBOW word vectors of its (tokenized, id-mapped) name. This is the
//!   default: it needs nothing beyond the pre-trained embedding table.
//! * [`ConceptVectors::from_rows`] — wraps externally computed rows, e.g.
//!   frozen encoder final states held in the serving concept cache, so a
//!   caller can trade the bag-of-words composition for an order-aware one
//!   without touching the index code.
//!
//! Rows are L2-normalized at build time (zero rows stay zero), so cosine
//! similarity downstream is a plain dot product.

use ncl_tensor::Matrix;

/// One L2-normalized dense vector per concept, row-indexed by the
/// caller's concept ordinal (the same order the docs were passed in).
#[derive(Debug, Clone)]
pub struct ConceptVectors {
    vectors: Matrix,
}

impl ConceptVectors {
    /// Builds one vector per entry of `docs` by mean-pooling the
    /// embedding rows of each doc's token ids, then L2-normalizing.
    ///
    /// Token ids that fall outside the table are skipped (they contribute
    /// nothing to the mean); a doc with no in-table tokens gets a zero
    /// vector, which [`crate::ann::AnnIndex`] treats as unreachable by
    /// any nonzero query except via the exact-scan tail.
    pub fn mean_pooled(table: &Matrix, docs: &[Vec<u32>]) -> Self {
        let dims = table.cols();
        let rows = table.rows();
        let mut vectors = Matrix::zeros(docs.len(), dims);
        for (c, doc) in docs.iter().enumerate() {
            let out = vectors.row_mut(c);
            let mut n = 0usize;
            for &tok in doc {
                let t = tok as usize;
                if t >= rows {
                    continue;
                }
                for (o, &v) in out.iter_mut().zip(table.row(t)) {
                    *o += v;
                }
                n += 1;
            }
            if n > 1 {
                let inv = 1.0 / n as f32;
                for o in out.iter_mut() {
                    *o *= inv;
                }
            }
        }
        Self::from_rows(vectors)
    }

    /// Wraps externally computed per-concept rows (e.g. frozen encoder
    /// final states), L2-normalizing each row in place.
    pub fn from_rows(mut vectors: Matrix) -> Self {
        for r in 0..vectors.rows() {
            let norm = vectors.row_vector(r).norm();
            if norm > f32::EPSILON {
                for v in vectors.row_mut(r) {
                    *v /= norm;
                }
            }
        }
        Self { vectors }
    }

    /// Mean-pools and L2-normalizes a query's token ids against the same
    /// table; `None` when no token is in-table (the all-OOV case) or the
    /// pooled vector has no direction.
    pub fn query_vector(table: &Matrix, tokens: &[u32]) -> Option<Vec<f32>> {
        let dims = table.cols();
        let rows = table.rows();
        let mut q = vec![0.0f32; dims];
        let mut n = 0usize;
        for &tok in tokens {
            let t = tok as usize;
            if t >= rows {
                continue;
            }
            for (o, &v) in q.iter_mut().zip(table.row(t)) {
                *o += v;
            }
            n += 1;
        }
        if n == 0 {
            return None;
        }
        let norm = q.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm <= f32::EPSILON {
            return None;
        }
        for v in &mut q {
            *v /= norm;
        }
        Some(q)
    }

    /// Number of concept rows.
    pub fn len(&self) -> usize {
        self.vectors.rows()
    }

    /// Whether there are no concept rows.
    pub fn is_empty(&self) -> bool {
        self.vectors.rows() == 0
    }

    /// Vector dimensionality.
    pub fn dims(&self) -> usize {
        self.vectors.cols()
    }

    /// The normalized vector for concept ordinal `c`.
    pub fn row(&self, c: usize) -> &[f32] {
        self.vectors.row(c)
    }

    /// The underlying normalized matrix (one row per concept).
    pub fn matrix(&self) -> &Matrix {
        &self.vectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Matrix {
        Matrix::from_vec(
            4,
            2,
            vec![
                1.0, 0.0, // 0
                0.0, 1.0, // 1
                -1.0, 0.0, // 2
                3.0, 4.0, // 3
            ],
        )
    }

    #[test]
    fn mean_pool_normalizes() {
        let cv = ConceptVectors::mean_pooled(&table(), &[vec![0, 1], vec![3]]);
        assert_eq!(cv.len(), 2);
        let r0 = cv.row(0);
        let n0: f32 = r0.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((n0 - 1.0).abs() < 1e-6);
        // Row 1 is [3,4]/5.
        assert!((cv.row(1)[0] - 0.6).abs() < 1e-6);
        assert!((cv.row(1)[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn out_of_table_tokens_skipped() {
        let cv = ConceptVectors::mean_pooled(&table(), &[vec![0, 900]]);
        assert!((cv.row(0)[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cancelling_tokens_leave_zero_row() {
        let cv = ConceptVectors::mean_pooled(&table(), &[vec![0, 2]]);
        assert_eq!(cv.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn query_vector_matches_pooling() {
        let q = ConceptVectors::query_vector(&table(), &[0, 1]).unwrap();
        let inv = 1.0f32 / 2.0f32.sqrt();
        assert!((q[0] - inv).abs() < 1e-6 && (q[1] - inv).abs() < 1e-6);
    }

    #[test]
    fn all_oov_query_is_none() {
        assert!(ConceptVectors::query_vector(&table(), &[99, 100]).is_none());
        assert!(ConceptVectors::query_vector(&table(), &[]).is_none());
        // Cancelling directions: pooled vector has no direction.
        assert!(ConceptVectors::query_vector(&table(), &[0, 2]).is_none());
    }
}
