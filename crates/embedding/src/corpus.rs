//! Corpus construction with concept-id incorporation (§4.2).
//!
//! Two sources feed the pre-training corpus (§3, Model Training):
//! 1. unlabeled queries (e.g. accumulated physician notes), used verbatim;
//! 2. labeled snippets, *altered* by interleaving the concept id between
//!    the words so that word co-occurrence is disambiguated per concept
//!    ("the original unlabeled text snippets are unchanged").

use ncl_text::Vocab;

/// Interleaves `cid` before every word of `tokens`:
/// `["protein","deficiency","anemia"]` with cid `"d53.0"` becomes
/// `["d53.0","protein","d53.0","deficiency","d53.0","anemia"]` — the §4.2
/// transformation. The cid is kept as one opaque token (it is never
/// re-tokenised), matching how the paper treats codes as single context
/// units.
pub fn incorporate_concept_id(tokens: &[String], cid: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        out.push(cid.to_string());
        out.push(t.clone());
    }
    out
}

/// A pre-training corpus: interned sentences plus the shared vocabulary
/// `Ω'` (which covers both concept-description words and unlabeled-query
/// words, §5 Phase I).
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Interned sentences.
    pub sentences: Vec<Vec<u32>>,
    /// The vocabulary `Ω'`.
    pub vocab: Vocab,
    /// Unigram counts per word id (indexed by id), used for the negative
    /// sampling distribution.
    pub counts: Vec<u64>,
    /// Which vocabulary entries are concept-id tokens (excluded from
    /// nearest-word search during query rewriting).
    pub is_cid: Vec<bool>,
}

/// Incremental corpus builder.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    sentences: Vec<Vec<String>>,
    cid_markers: Vec<Vec<bool>>,
}

impl CorpusBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an unlabeled snippet verbatim.
    pub fn add_unlabeled(&mut self, tokens: &[String]) {
        if tokens.is_empty() {
            return;
        }
        self.cid_markers.push(vec![false; tokens.len()]);
        self.sentences.push(tokens.to_vec());
    }

    /// Adds a labeled snippet with its concept id incorporated.
    pub fn add_labeled(&mut self, tokens: &[String], cid: &str) {
        if tokens.is_empty() {
            return;
        }
        let altered = incorporate_concept_id(tokens, cid);
        let markers: Vec<bool> = (0..altered.len()).map(|i| i % 2 == 0).collect();
        self.cid_markers.push(markers);
        self.sentences.push(altered);
    }

    /// Number of sentences so far.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether no sentences were added.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Interns everything and finalises the corpus.
    pub fn build(self) -> Corpus {
        let mut vocab = Vocab::new();
        let mut interned = Vec::with_capacity(self.sentences.len());
        let mut is_cid = vec![false; 4];
        let mut counts = vec![0u64; 4];
        for (sent, markers) in self.sentences.iter().zip(&self.cid_markers) {
            let mut ids = Vec::with_capacity(sent.len());
            for (tok, &cid) in sent.iter().zip(markers) {
                let id = vocab.add(tok);
                let idx = id as usize;
                if idx >= counts.len() {
                    counts.resize(idx + 1, 0);
                    is_cid.resize(idx + 1, false);
                }
                counts[idx] += 1;
                if cid {
                    is_cid[idx] = true;
                }
                ids.push(id);
            }
            interned.push(ids);
        }
        Corpus {
            sentences: interned,
            vocab,
            counts,
            is_cid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn incorporation_matches_paper_example() {
        let out = incorporate_concept_id(&toks("protein deficiency anemia"), "d53.0");
        assert_eq!(out, toks("d53.0 protein d53.0 deficiency d53.0 anemia"));
    }

    #[test]
    fn incorporation_of_empty_is_empty() {
        assert!(incorporate_concept_id(&[], "d53.0").is_empty());
    }

    #[test]
    fn builder_marks_cid_tokens() {
        let mut b = CorpusBuilder::new();
        b.add_labeled(&toks("protein deficiency anemia"), "d53.0");
        b.add_unlabeled(&toks("scurvy"));
        let c = b.build();
        assert_eq!(c.sentences.len(), 2);
        let cid_id = c.vocab.get("d53.0").unwrap();
        assert!(c.is_cid[cid_id as usize]);
        let protein_id = c.vocab.get("protein").unwrap();
        assert!(!c.is_cid[protein_id as usize]);
    }

    #[test]
    fn counts_accumulate_across_sentences() {
        let mut b = CorpusBuilder::new();
        b.add_unlabeled(&toks("anemia anemia pain"));
        b.add_unlabeled(&toks("anemia"));
        let c = b.build();
        let id = c.vocab.get("anemia").unwrap() as usize;
        assert_eq!(c.counts[id], 3);
    }

    #[test]
    fn cid_count_equals_word_count() {
        let mut b = CorpusBuilder::new();
        b.add_labeled(&toks("acute abdomen"), "r10.0");
        let c = b.build();
        let cid = c.vocab.get("r10.0").unwrap() as usize;
        assert_eq!(c.counts[cid], 2);
    }

    #[test]
    fn empty_snippets_skipped() {
        let mut b = CorpusBuilder::new();
        b.add_unlabeled(&[]);
        b.add_labeled(&[], "x");
        assert!(b.is_empty());
        assert_eq!(b.build().sentences.len(), 0);
    }

    #[test]
    fn unlabeled_text_is_unchanged() {
        let mut b = CorpusBuilder::new();
        b.add_unlabeled(&toks("iron def anemia from menorrhagia"));
        let c = b.build();
        assert_eq!(c.sentences[0].len(), 5);
        assert!(c.is_cid.iter().all(|&x| !x));
    }
}
