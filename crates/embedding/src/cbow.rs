//! CBOW with negative sampling.
//!
//! Appendix B.2 fixes the paper's pre-training hyper-parameters: noise
//! samples 10, window 10, 10 iterations, learning rate 0.05; those are the
//! defaults here. The objective follows word2vec (Mikolov et al. \[31\]):
//! the averaged context representation predicts the centre word against
//! sampled noise words drawn from the unigram distribution raised to 3/4.

use crate::corpus::Corpus;
use ncl_tensor::ops::sigmoid;
use ncl_tensor::pool::WorkerPool;
use ncl_tensor::{init, Matrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// CBOW hyper-parameters (defaults from Appendix B.2).
#[derive(Debug, Clone, Copy)]
pub struct CbowConfig {
    /// Embedding dimensionality `d` (Table 1 sweeps 50–200; default 150).
    pub dim: usize,
    /// Context window `α` on each side.
    pub window: usize,
    /// Number of negative samples per positive.
    pub negative: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate, linearly decayed to 1e-4 of itself.
    pub lr: f32,
    /// RNG seed (training is fully deterministic given the seed).
    pub seed: u64,
    /// Worker threads. `<= 1` runs the exact word2vec pure-SGD loop;
    /// `>= 2` switches to a chunk-synchronous data-parallel scheme
    /// (gradients per chunk of positions against frozen parameters,
    /// merged in fixed shard order). The two schemes converge to
    /// embeddings of the same quality but are *different algorithms*:
    /// results are deterministic within each scheme (any `threads >= 2`
    /// count gives bit-identical output) but differ between them.
    pub threads: usize,
}

impl Default for CbowConfig {
    fn default() -> Self {
        Self {
            dim: 150,
            window: 10,
            negative: 10,
            epochs: 10,
            lr: 0.05,
            seed: 0x5eed,
            threads: 1,
        }
    }
}

/// A trained CBOW model: input embeddings (the word representations fed
/// to COM-AID) and output embeddings (discarded after training, kept for
/// inspection).
#[derive(Debug, Clone)]
pub struct CbowModel {
    syn0: Matrix,
    syn1: Matrix,
    config: CbowConfig,
}

impl CbowModel {
    /// Trains CBOW over `corpus`.
    ///
    /// # Panics
    /// Panics if the corpus vocabulary is empty of regular words.
    pub fn train(corpus: &Corpus, config: CbowConfig) -> Self {
        let vocab_size = corpus.vocab.len();
        assert!(vocab_size > 4, "cbow: corpus has no regular words");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut syn0 = init::embedding_uniform(vocab_size, config.dim, &mut rng);
        let mut syn1 = Matrix::zeros(vocab_size, config.dim);
        let table = NegativeTable::new(&corpus.counts);

        if config.threads <= 1 {
            train_sequential(corpus, &config, &table, &mut rng, &mut syn0, &mut syn1);
        } else {
            train_parallel(corpus, &config, &table, &mut rng, &mut syn0, &mut syn1);
        }

        Self { syn0, syn1, config }
    }

    /// The learned word representations, one row per vocabulary entry —
    /// this matrix seeds COM-AID's embedding table.
    pub fn embeddings(&self) -> &Matrix {
        &self.syn0
    }

    /// Consumes the model, returning the embedding matrix.
    pub fn into_embeddings(self) -> Matrix {
        self.syn0
    }

    /// The output-side embeddings (diagnostic only).
    pub fn output_embeddings(&self) -> &Matrix {
        &self.syn1
    }

    /// The representation of one word.
    pub fn word_vector(&self, id: u32) -> Vector {
        self.syn0.row_vector(id as usize)
    }

    /// The configuration used for training.
    pub fn config(&self) -> &CbowConfig {
        &self.config
    }
}

/// The exact word2vec pure-SGD loop: every position updates `syn0`/`syn1`
/// in place before the next position reads them. This is the reference
/// algorithm; `threads <= 1` runs it verbatim so single-threaded results
/// are bit-identical to every earlier release.
fn train_sequential(
    corpus: &Corpus,
    config: &CbowConfig,
    table: &NegativeTable,
    rng: &mut StdRng,
    syn0: &mut Matrix,
    syn1: &mut Matrix,
) {
    let total_positions: usize = corpus.sentences.iter().map(|s| s.len()).sum();
    let total_steps = (total_positions * config.epochs).max(1);
    let mut step = 0usize;

    let mut h = Vector::zeros(config.dim);
    let mut dh = Vector::zeros(config.dim);

    for _epoch in 0..config.epochs {
        for sent in &corpus.sentences {
            for (i, &center) in sent.iter().enumerate() {
                let lr =
                    (config.lr * (1.0 - step as f32 / total_steps as f32)).max(config.lr * 1e-4);
                step += 1;

                // word2vec uses a random dynamic window b ∈ [1, window].
                let b = rng.gen_range(1..=config.window.max(1));
                let lo = i.saturating_sub(b);
                let hi = (i + b + 1).min(sent.len());
                let mut cw = 0usize;
                h.fill_zero();
                for (j, &ctx) in sent.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    h.axpy(1.0, &syn0.row_vector(ctx as usize));
                    cw += 1;
                }
                if cw == 0 {
                    continue;
                }
                h.scale(1.0 / cw as f32);

                dh.fill_zero();
                // Positive sample plus `negative` noise words.
                for s in 0..=config.negative {
                    let (target, label) = if s == 0 {
                        (center as usize, 1.0f32)
                    } else {
                        let mut neg = table.sample(rng);
                        if neg == center as usize {
                            neg = table.sample(rng);
                        }
                        (neg, 0.0)
                    };
                    let out = syn1.row_vector(target);
                    let score = sigmoid(h.dot(&out));
                    let g = (label - score) * lr;
                    dh.axpy(g, &out);
                    // syn1[target] += g * h
                    let row = syn1.row_mut(target);
                    for (r, hv) in row.iter_mut().zip(h.as_slice()) {
                        *r += g * hv;
                    }
                }
                // Propagate to every context word (word2vec adds the
                // full error vector to each).
                for (j, &ctx) in sent.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    let row = syn0.row_mut(ctx as usize);
                    for (r, dv) in row.iter_mut().zip(dh.as_slice()) {
                        *r += dv;
                    }
                }
            }
        }
    }
}

/// Positions per synchronization round in the data-parallel scheme.
/// Within one chunk every shard reads the parameters frozen at the
/// chunk boundary; deltas are merged when the whole chunk retires.
/// Larger chunks amortize dispatch but stale the gradients (the whole
/// chunk acts as one mini-batch); 128 keeps convergence close to the
/// sequential loop while leaving 16-position shard jobs.
const CHUNK: usize = 128;

/// Fixed shard count per chunk. The shard structure is a pure function
/// of the chunk (never of the worker count), so any `threads >= 2`
/// produces bit-identical embeddings.
const SUB_SHARDS: usize = 8;

/// Everything one training position needs, pre-drawn on the main thread
/// in global position order so the RNG stream is independent of how
/// positions are later sharded across workers.
struct PosDraw {
    /// Sentence index into `corpus.sentences`.
    sent: u32,
    /// Position of the centre word within the sentence.
    pos: u32,
    /// Learning rate at this global step (linear decay, floored).
    lr: f32,
    /// Dynamic window radius drawn uniformly from `[1, window]`.
    b: usize,
    /// True when the window holds no context words (single-word
    /// sentence): the position is a no-op, mirroring the sequential
    /// loop's `continue`, and no negatives were drawn for it.
    skip: bool,
    /// Negative-sample ids, one per noise word.
    negs: Vec<usize>,
}

/// Sparse row-delta accumulator: rows appear in first-touch order so
/// merging is deterministic, and only touched rows cost memory.
struct SparseRows {
    dim: usize,
    index: HashMap<usize, usize>,
    rows: Vec<(usize, Vec<f32>)>,
}

impl SparseRows {
    fn new(dim: usize) -> Self {
        Self {
            dim,
            index: HashMap::new(),
            rows: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.index.clear();
        self.rows.clear();
    }

    fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let slot = match self.index.get(&r) {
            Some(&slot) => slot,
            None => {
                let slot = self.rows.len();
                self.rows.push((r, vec![0.0; self.dim]));
                self.index.insert(r, slot);
                slot
            }
        };
        &mut self.rows[slot].1
    }

    /// Adds every accumulated row delta into `target`, in first-touch
    /// order.
    fn merge_into(&self, target: &mut Matrix) {
        for (r, delta) in &self.rows {
            let row = target.row_mut(*r);
            for (t, d) in row.iter_mut().zip(delta) {
                *t += *d;
            }
        }
    }
}

/// Chunk-synchronous data-parallel CBOW. Per chunk of [`CHUNK`]
/// positions: the main thread pre-draws every random decision in
/// global position order, the chunk is dealt to [`SUB_SHARDS`] fixed
/// shards whose workers compute gradients against the parameters
/// frozen at the chunk boundary, and the sparse deltas are merged in
/// shard order. Determinism follows because nothing depends on the
/// worker count: draws happen on one thread, the shard structure is a
/// function of chunk length alone, and merges run in a fixed order.
fn train_parallel(
    corpus: &Corpus,
    config: &CbowConfig,
    table: &NegativeTable,
    rng: &mut StdRng,
    syn0: &mut Matrix,
    syn1: &mut Matrix,
) {
    let positions: Vec<(u32, u32)> = corpus
        .sentences
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.len()).map(move |p| (si as u32, p as u32)))
        .collect();
    let total_steps = (positions.len() * config.epochs).max(1);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = WorkerPool::new(config.threads.min(hw).max(1));

    let mut step = 0usize;
    let mut draws: Vec<PosDraw> = Vec::with_capacity(CHUNK);
    let mut shard_d0: Vec<SparseRows> = (0..SUB_SHARDS)
        .map(|_| SparseRows::new(config.dim))
        .collect();
    let mut shard_d1: Vec<SparseRows> = (0..SUB_SHARDS)
        .map(|_| SparseRows::new(config.dim))
        .collect();

    for _epoch in 0..config.epochs {
        for chunk in positions.chunks(CHUNK) {
            // Pre-draw all randomness for the chunk on this thread, in
            // position order; the RNG consumption mirrors the
            // sequential loop (negatives only when the window is
            // non-empty).
            draws.clear();
            for &(si, pi) in chunk {
                let sent = &corpus.sentences[si as usize];
                let lr =
                    (config.lr * (1.0 - step as f32 / total_steps as f32)).max(config.lr * 1e-4);
                step += 1;
                let b = rng.gen_range(1..=config.window.max(1));
                let i = pi as usize;
                let lo = i.saturating_sub(b);
                let hi = (i + b + 1).min(sent.len());
                let skip = hi - lo <= 1;
                let mut negs = Vec::new();
                if !skip {
                    let center = sent[i] as usize;
                    negs.reserve(config.negative);
                    for _ in 0..config.negative {
                        let mut neg = table.sample(rng);
                        if neg == center {
                            neg = table.sample(rng);
                        }
                        negs.push(neg);
                    }
                }
                draws.push(PosDraw {
                    sent: si,
                    pos: pi,
                    lr,
                    b,
                    skip,
                    negs,
                });
            }

            let width = draws.len().div_ceil(SUB_SHARDS).max(1);
            let shards: Vec<&[PosDraw]> = draws.chunks(width).collect();
            let ns = shards.len();
            for d in shard_d0[..ns].iter_mut().chain(shard_d1[..ns].iter_mut()) {
                d.clear();
            }

            let sentences = &corpus.sentences;
            let frozen0: &Matrix = syn0;
            let frozen1: &Matrix = syn1;
            let dim = config.dim;
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ns);
            for ((shard, d0), d1) in shards
                .into_iter()
                .zip(shard_d0[..ns].iter_mut())
                .zip(shard_d1[..ns].iter_mut())
            {
                jobs.push(Box::new(move || {
                    run_cbow_shard(shard, sentences, frozen0, frozen1, dim, d0, d1);
                }));
            }
            pool.run(jobs);

            for s in 0..ns {
                shard_d0[s].merge_into(syn0);
                shard_d1[s].merge_into(syn1);
            }
        }
    }
}

/// Computes one shard's gradient deltas against frozen parameters.
fn run_cbow_shard(
    draws: &[PosDraw],
    sentences: &[Vec<u32>],
    syn0: &Matrix,
    syn1: &Matrix,
    dim: usize,
    d0: &mut SparseRows,
    d1: &mut SparseRows,
) {
    let mut h = vec![0.0f32; dim];
    let mut dh = vec![0.0f32; dim];
    for d in draws {
        if d.skip {
            continue;
        }
        let sent = &sentences[d.sent as usize];
        let i = d.pos as usize;
        let center = sent[i] as usize;
        let lo = i.saturating_sub(d.b);
        let hi = (i + d.b + 1).min(sent.len());
        let cw = (hi - lo - 1) as f32;

        h.iter_mut().for_each(|v| *v = 0.0);
        for (j, &ctx) in sent.iter().enumerate().take(hi).skip(lo) {
            if j == i {
                continue;
            }
            for (hv, sv) in h.iter_mut().zip(syn0.row(ctx as usize)) {
                *hv += *sv;
            }
        }
        let inv = 1.0 / cw;
        h.iter_mut().for_each(|v| *v *= inv);

        dh.iter_mut().for_each(|v| *v = 0.0);
        for s in 0..=d.negs.len() {
            let (target, label) = if s == 0 {
                (center, 1.0f32)
            } else {
                (d.negs[s - 1], 0.0)
            };
            let out = syn1.row(target);
            let score = sigmoid(h.iter().zip(out).map(|(a, b)| a * b).sum::<f32>());
            let g = (label - score) * d.lr;
            for (dv, ov) in dh.iter_mut().zip(out) {
                *dv += g * *ov;
            }
            let row = d1.row_mut(target);
            for (rv, hv) in row.iter_mut().zip(&h) {
                *rv += g * *hv;
            }
        }
        for (j, &ctx) in sent.iter().enumerate().take(hi).skip(lo) {
            if j == i {
                continue;
            }
            let row = d0.row_mut(ctx as usize);
            for (rv, dv) in row.iter_mut().zip(&dh) {
                *rv += *dv;
            }
        }
    }
}

/// Cumulative-distribution sampler over `count^0.75`.
struct NegativeTable {
    cdf: Vec<f64>,
}

impl NegativeTable {
    fn new(counts: &[u64]) -> Self {
        let mut cdf = Vec::with_capacity(counts.len());
        let mut acc = 0.0f64;
        for (id, &c) in counts.iter().enumerate() {
            // Special tokens (ids 0..4) never appear in sentences and have
            // zero count, so they are never sampled.
            let w = if id < 4 { 0.0 } else { (c as f64).powf(0.75) };
            acc += w;
            cdf.push(acc);
        }
        Self { cdf }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().unwrap_or(&0.0);
        if total <= 0.0 {
            return 4.min(self.cdf.len().saturating_sub(1));
        }
        let x = rng.gen_range(0.0..total);
        self.cdf.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    /// A corpus where `renal` and `kidney` appear in identical contexts
    /// but `abdomen` in different ones: kidney/renal must embed closer.
    fn synonym_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..60 {
            b.add_unlabeled(&toks("chronic kidney disease stage five"));
            b.add_unlabeled(&toks("chronic renal disease stage five"));
            b.add_unlabeled(&toks("acute abdomen pain today"));
            b.add_unlabeled(&toks("severe abdomen pain today"));
        }
        b.build()
    }

    fn small_config() -> CbowConfig {
        CbowConfig {
            dim: 16,
            window: 3,
            negative: 5,
            epochs: 12,
            lr: 0.05,
            seed: 3,
            threads: 1,
        }
    }

    #[test]
    fn embeddings_have_expected_shape() {
        let corpus = synonym_corpus();
        let model = CbowModel::train(&corpus, small_config());
        assert_eq!(model.embeddings().rows(), corpus.vocab.len());
        assert_eq!(model.embeddings().cols(), 16);
        assert!(model.embeddings().is_finite());
    }

    #[test]
    fn distributional_synonyms_embed_close() {
        let corpus = synonym_corpus();
        let model = CbowModel::train(&corpus, small_config());
        let v = |w: &str| model.word_vector(corpus.vocab.get(w).unwrap());
        let kidney = v("kidney");
        let renal = v("renal");
        let abdomen = v("abdomen");
        let sim_syn = kidney.cosine(&renal);
        let sim_other = kidney.cosine(&abdomen);
        assert!(
            sim_syn > sim_other,
            "kidney~renal ({sim_syn}) should beat kidney~abdomen ({sim_other})"
        );
    }

    /// The paper's motivating claim (§4.2): without incorporation,
    /// "protein", "folate" and "iron" embed together; with concept ids
    /// interleaved, they are pushed apart.
    #[test]
    fn concept_incorporation_separates_contrast_words() {
        let snippets = [
            ("protein deficiency anemia", "d53.0"),
            ("dietary folate deficiency anemia", "d52.0"),
            ("iron deficiency anemia unspecified", "d50.0"),
        ];
        let build = |incorporate: bool| {
            let mut b = CorpusBuilder::new();
            for _ in 0..80 {
                for (s, cid) in &snippets {
                    if incorporate {
                        b.add_labeled(&toks(s), cid);
                    } else {
                        b.add_unlabeled(&toks(s));
                    }
                }
            }
            b.build()
        };
        let cfg = small_config();
        let plain = build(false);
        let incorp = build(true);
        let m_plain = CbowModel::train(&plain, cfg);
        let m_incorp = CbowModel::train(&incorp, cfg);
        let sim = |m: &CbowModel, c: &Corpus, a: &str, b: &str| {
            m.word_vector(c.vocab.get(a).unwrap())
                .cosine(&m.word_vector(c.vocab.get(b).unwrap()))
        };
        let before = sim(&m_plain, &plain, "protein", "iron");
        let after = sim(&m_incorp, &incorp, "protein", "iron");
        assert!(
            after < before,
            "incorporation should separate protein/iron: before={before}, after={after}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = synonym_corpus();
        let a = CbowModel::train(&corpus, small_config());
        let b = CbowModel::train(&corpus, small_config());
        assert_eq!(a.embeddings().as_slice(), b.embeddings().as_slice());
    }

    #[test]
    fn parallel_training_is_thread_count_invariant() {
        let corpus = synonym_corpus();
        let at = |threads: usize| {
            let cfg = CbowConfig {
                threads,
                ..small_config()
            };
            CbowModel::train(&corpus, cfg)
        };
        let two = at(2);
        let three = at(3);
        let four = at(4);
        assert_eq!(two.embeddings().as_slice(), three.embeddings().as_slice());
        assert_eq!(two.embeddings().as_slice(), four.embeddings().as_slice());
        assert_eq!(
            two.output_embeddings().as_slice(),
            four.output_embeddings().as_slice()
        );
    }

    #[test]
    fn parallel_training_preserves_synonym_quality() {
        let corpus = synonym_corpus();
        let cfg = CbowConfig {
            threads: 2,
            ..small_config()
        };
        let model = CbowModel::train(&corpus, cfg);
        assert!(model.embeddings().is_finite());
        let v = |w: &str| model.word_vector(corpus.vocab.get(w).unwrap());
        let sim_syn = v("kidney").cosine(&v("renal"));
        let sim_other = v("kidney").cosine(&v("abdomen"));
        assert!(
            sim_syn > sim_other,
            "parallel CBOW lost synonym structure: {sim_syn} vs {sim_other}"
        );
    }

    #[test]
    fn negative_table_never_samples_specials() {
        let counts = vec![0, 0, 0, 0, 10, 1];
        let table = NegativeTable::new(&counts);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = table.sample(&mut rng);
            assert!(s >= 4, "sampled special token {s}");
        }
    }

    #[test]
    fn negative_table_prefers_frequent_words() {
        let counts = vec![0, 0, 0, 0, 1000, 1];
        let table = NegativeTable::new(&counts);
        let mut rng = StdRng::seed_from_u64(2);
        let hits4 = (0..500).filter(|_| table.sample(&mut rng) == 4).count();
        assert!(hits4 > 400);
    }

    #[test]
    #[should_panic(expected = "no regular words")]
    fn empty_corpus_panics() {
        let corpus = CorpusBuilder::new().build();
        let _ = CbowModel::train(&corpus, small_config());
    }
}
