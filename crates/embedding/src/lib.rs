#![warn(missing_docs)]

//! # ncl-embedding
//!
//! The pre-training phase of NCL (§4.2 of *Fine-grained Concept Linking
//! using Neural Networks in Healthcare*, Dai et al., SIGMOD 2018): word
//! representation learning over unlabeled clinical snippets.
//!
//! The paper's key observation is that the distributional hypothesis
//! misleads for short concept mentions: in "protein deficiency anemia" /
//! "dietary folate deficiency anemia" / "iron deficiency anemia
//! unspecified" the words *protein*, *folate* and *iron* share contexts
//! yet denote different concepts. NCL therefore **alters** each labeled
//! snippet by interleaving its concept identifier between the words
//! ("D53.0 protein D53.0 deficiency D53.0 anemia"), which pushes those
//! embeddings apart; see [`corpus::incorporate_concept_id`].
//!
//! Embeddings are then learned with CBOW. The paper trains with
//! noise-contrastive estimation (Appendix B.2: "the parameter
//! noise-contrastive estimation (NCE) is set to 10"); we use *negative
//! sampling*, word2vec's standard simplification of NCE with the same
//! hyper-parameter (number of noise samples) and near-identical embedding
//! quality — this substitution is recorded in `DESIGN.md`.

pub mod ann;
pub mod cbow;
pub mod concept;
pub mod corpus;
pub mod nearest;

pub use ann::{AnnIndex, HnswConfig, SearchStats};
pub use cbow::{CbowConfig, CbowModel};
pub use concept::ConceptVectors;
pub use corpus::Corpus;
pub use nearest::NearestWords;
