//! LR⁺: logistic-regression string matching, extended with structural
//! features.
//!
//! Tsuruoka et al. (Bioinformatics 2007) learn a string-pair matcher for
//! dictionary look-up from hand-crafted features; §6.1 of the NCL paper
//! lists the textual ones — "character bigrams, prefix/suffix, sharing
//! numbers, acronym" — and extends the method: "For a concept c, its
//! structural features are obtained by applying the textual feature
//! functions … to the aggregated text snippet of its ancestors' canonical
//! descriptions." §6.4 limits LR⁺ to the candidates retrieved by NCL,
//! because the classifier degrades sharply with many concepts; this
//! implementation exposes [`Annotator::rank_candidates`] for exactly that
//! usage.

use crate::Annotator;
use ncl_ontology::{ConceptId, Ontology};
use ncl_tensor::ops::sigmoid;
use ncl_text::abbrev::acronym;
use ncl_text::ngram::{ngram_dice, token_jaccard};
use ncl_text::tokenize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Number of features: 6 textual + 3 structural.
pub const NUM_FEATURES: usize = 9;

/// Extracts the pair features for (query, concept strings).
fn features(query: &[String], canonical: &[String], ancestors: &[String]) -> [f32; NUM_FEATURES] {
    let q = query.join(" ");
    let c = canonical.join(" ");
    let a = ancestors.join(" ");
    let anc_tokens: Vec<String> = ancestors.to_vec();

    // 1. Character-bigram dice.
    let bigram = ngram_dice(&q, &c, 2);
    // 2. Prefix share.
    let prefix = common_affix(&q, &c, true);
    // 3. Suffix share.
    let suffix = common_affix(&q, &c, false);
    // 4. Sharing numbers.
    let numbers = shared_numbers(query, canonical);
    // 5. Acronym: some query token is the acronym of the description.
    let acr = acronym(canonical);
    let acr_feat = if !acr.is_empty() && query.contains(&acr) {
        1.0
    } else {
        0.0
    };
    // 6. Token jaccard.
    let jac = token_jaccard(query, canonical);
    // 7–9. Structural: bigram dice / numbers / jaccard against the
    // aggregated ancestor descriptions.
    let s_bigram = ngram_dice(&q, &a, 2);
    let s_numbers = shared_numbers(query, &anc_tokens);
    let s_jac = token_jaccard(query, &anc_tokens);

    [
        bigram, prefix, suffix, numbers, acr_feat, jac, s_bigram, s_numbers, s_jac,
    ]
}

fn common_affix(a: &str, b: &str, prefix: bool) -> f32 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let min = ac.len().min(bc.len());
    if min == 0 {
        return 0.0;
    }
    let mut n = 0;
    for i in 0..min {
        let (x, y) = if prefix {
            (ac[i], bc[i])
        } else {
            (ac[ac.len() - 1 - i], bc[bc.len() - 1 - i])
        };
        if x == y {
            n += 1;
        } else {
            break;
        }
    }
    n as f32 / min as f32
}

fn shared_numbers(a: &[String], b: &[String]) -> f32 {
    let na: Vec<&String> = a
        .iter()
        .filter(|t| t.chars().all(|c| c.is_ascii_digit()))
        .collect();
    let nb: Vec<&String> = b
        .iter()
        .filter(|t| t.chars().all(|c| c.is_ascii_digit()))
        .collect();
    if na.is_empty() && nb.is_empty() {
        return 0.5; // neutral: numbers play no role
    }
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    let shared = na.iter().filter(|x| nb.contains(x)).count();
    shared as f32 / na.len().max(nb.len()) as f32
}

/// The trained LR⁺ matcher.
#[derive(Debug, Clone)]
pub struct LrPlus {
    weights: [f32; NUM_FEATURES],
    bias: f32,
    /// Per concept: canonical tokens and aggregated ancestor tokens.
    concept_strings: Vec<(ConceptId, Vec<String>, Vec<String>)>,
}

impl LrPlus {
    /// Trains the matcher: positives are ⟨alias, its concept⟩ pairs,
    /// negatives are ⟨alias, random other concept⟩ pairs (one per
    /// positive).
    pub fn train(ontology: &Ontology, epochs: usize, lr: f32, seed: u64) -> Self {
        let fine = ontology.fine_grained();
        let concept_strings: Vec<(ConceptId, Vec<String>, Vec<String>)> = fine
            .iter()
            .map(|&id| {
                let canonical = tokenize(&ontology.concept(id).canonical);
                let mut anc_tokens = Vec::new();
                for anc in ontology.ancestors(id) {
                    anc_tokens.extend(tokenize(&ontology.concept(anc).canonical));
                }
                (id, canonical, anc_tokens)
            })
            .collect();

        // Assemble training pairs.
        let mut examples: Vec<([f32; NUM_FEATURES], f32)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, &(id, ref canonical, ref anc)) in concept_strings.iter().enumerate() {
            for alias in &ontology.concept(id).aliases {
                let q = tokenize(alias);
                examples.push((features(&q, canonical, anc), 1.0));
                // A random negative concept.
                if concept_strings.len() > 1 {
                    let mut j = rng.gen_range(0..concept_strings.len());
                    if j == i {
                        j = (j + 1) % concept_strings.len();
                    }
                    let (_, nc, na) = &concept_strings[j];
                    examples.push((features(&q, nc, na), 0.0));
                }
            }
        }

        let mut weights = [0.0f32; NUM_FEATURES];
        let mut bias = 0.0f32;
        let mut order: Vec<usize> = (0..examples.len()).collect();
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (f, label) = &examples[i];
                let z: f32 = weights.iter().zip(f).map(|(w, x)| w * x).sum::<f32>() + bias;
                let g = (label - sigmoid(z)) * lr;
                for (w, x) in weights.iter_mut().zip(f) {
                    *w += g * x;
                }
                bias += g;
            }
        }

        Self {
            weights,
            bias,
            concept_strings,
        }
    }

    /// The learned feature weights (diagnostic).
    pub fn weights(&self) -> &[f32; NUM_FEATURES] {
        &self.weights
    }

    /// Match probability for (query, concept).
    pub fn score(&self, query: &[String], concept: ConceptId) -> Option<f32> {
        self.concept_strings
            .iter()
            .find(|(id, _, _)| *id == concept)
            .map(|(_, canonical, anc)| {
                let f = features(query, canonical, anc);
                sigmoid(self.weights.iter().zip(&f).map(|(w, x)| w * x).sum::<f32>() + self.bias)
            })
    }
}

impl Annotator for LrPlus {
    fn name(&self) -> &str {
        "LR+"
    }

    fn rank_candidates(&self, query: &[String], candidates: &[ConceptId]) -> Vec<(ConceptId, f32)> {
        let mut ranked: Vec<(ConceptId, f32)> = candidates
            .iter()
            .filter_map(|&c| self.score(query, c).map(|s| (c, s)))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked
    }

    fn universe(&self) -> Vec<ConceptId> {
        self.concept_strings.iter().map(|(id, _, _)| *id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_ontology::OntologyBuilder;

    fn world() -> Ontology {
        let mut b = OntologyBuilder::new();
        let n18 = b.add_root_concept("N18", "chronic kidney disease");
        let n185 = b.add_child(n18, "N18.5", "chronic kidney disease stage 5");
        let n189 = b.add_child(n18, "N18.9", "chronic kidney disease unspecified");
        b.add_alias(n185, "kidney disease stage 5");
        b.add_alias(n185, "chronic kidney dis stage 5");
        b.add_alias(n189, "kidney disease nos");
        b.add_alias(n189, "chronic kidney dis unspecified");
        let d50 = b.add_root_concept("D50", "iron deficiency anemia");
        let d500 = b.add_child(d50, "D50.0", "iron deficiency anemia blood loss");
        b.add_alias(d500, "iron def anemia");
        b.add_alias(d500, "anemia of blood loss");
        b.build().unwrap()
    }

    #[test]
    fn features_have_fixed_arity_and_range() {
        let f = features(
            &tokenize("ckd stage 5"),
            &tokenize("chronic kidney disease stage 5"),
            &tokenize("chronic kidney disease"),
        );
        assert_eq!(f.len(), NUM_FEATURES);
        for x in f {
            assert!((0.0..=1.0).contains(&x), "feature {x} out of range");
        }
    }

    #[test]
    fn shared_number_feature() {
        let f = features(
            &tokenize("ckd 5"),
            &tokenize("chronic kidney disease stage 5"),
            &[],
        );
        assert_eq!(f[3], 1.0);
        let g = features(&tokenize("ckd 4"), &tokenize("disease stage 5"), &[]);
        assert_eq!(g[3], 0.0);
    }

    #[test]
    fn acronym_feature_fires() {
        let f = features(
            &tokenize("ckd today"),
            &tokenize("chronic kidney disease"),
            &[],
        );
        assert_eq!(f[4], 1.0);
    }

    #[test]
    fn trained_matcher_ranks_syntactic_match_first() {
        let o = world();
        let lr = LrPlus::train(&o, 60, 0.5, 3);
        let ranked = lr.rank(&tokenize("kidney disease stage 5"), 5);
        assert_eq!(ranked[0].0, o.by_code("N18.5").unwrap());
    }

    #[test]
    fn candidate_restriction_respected() {
        let o = world();
        let lr = LrPlus::train(&o, 30, 0.5, 3);
        let only = vec![o.by_code("D50.0").unwrap()];
        let ranked = lr.rank_candidates(&tokenize("iron def anemia"), &only);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].0, only[0]);
    }

    #[test]
    fn scores_are_probabilities() {
        let o = world();
        let lr = LrPlus::train(&o, 30, 0.5, 3);
        for (_, s) in lr.rank(&tokenize("anemia blood"), 10) {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn unknown_concept_scores_none() {
        let o = world();
        let lr = LrPlus::train(&o, 5, 0.5, 3);
        // The root is not a fine-grained concept.
        assert!(lr
            .score(&tokenize("x"), ncl_ontology::Ontology::ROOT)
            .is_none());
    }

    #[test]
    fn training_learns_positive_overlap_weight() {
        let o = world();
        let lr = LrPlus::train(&o, 60, 0.5, 3);
        // Token-jaccard weight (index 5) should end positive: overlapping
        // pairs are positives.
        assert!(lr.weights()[5] > 0.0, "weights={:?}", lr.weights());
    }
}
