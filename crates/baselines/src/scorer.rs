//! Baselines as pluggable Phase-II scorers for the staged serving
//! engine (`ncl_core::serving`).
//!
//! §6.4 evaluates LR⁺ "on the candidate concepts retrieved by NCL" —
//! i.e. the baselines re-rank NCL's Phase-I candidates. This adapter
//! makes that protocol literal: any [`Annotator`] becomes a
//! [`ScoreStage`], so `Linker::link_with_scorer` serves it through the
//! *same* pipeline as COM-AID — query rewriting, TF-IDF retrieval,
//! budgets, panic isolation, and the degradation ladder all apply
//! unchanged.

use crate::Annotator;
use ncl_core::serving::{CacheUse, ScoreOutcome, ScoreRequest, ScoreStage};
use std::collections::HashMap;

/// Adapts an [`Annotator`] to the staged pipeline's [`ScoreStage`]
/// interface.
pub struct AnnotatorScore<'a> {
    annotator: &'a (dyn Annotator + Sync),
}

impl<'a> AnnotatorScore<'a> {
    /// Wraps an annotator for use with `Linker::link_with_scorer`.
    pub fn new(annotator: &'a (dyn Annotator + Sync)) -> Self {
        Self { annotator }
    }
}

impl ScoreStage for AnnotatorScore<'_> {
    fn name(&self) -> &str {
        self.annotator.name()
    }

    fn score(&self, req: ScoreRequest<'_>) -> ScoreOutcome {
        // Annotators rank atomically; the deadline only applies at the
        // stage boundary (the chain skips scoring when the call is
        // already over budget).
        let ranked = self.annotator.rank_candidates(req.query, req.candidates);
        let by_concept: HashMap<_, _> = ranked.into_iter().collect();
        let scores = req
            .candidates
            .iter()
            .map(|c| by_concept.get(c).copied())
            .collect();
        ScoreOutcome {
            scores,
            lost_jobs: 0,
            // An annotator returning fewer entries judged the rest
            // complete non-matches (see `Annotator::rank_candidates`) —
            // that is an answer, not a degradation. The unscored tail
            // still ranks below every scored candidate, in Phase-I
            // order.
            unscored_is_nonmatch: true,
            cache: CacheUse::Unconfigured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_ontology::ConceptId;

    /// A deterministic stub annotator: scores candidates by descending
    /// id parity, drops every third one as a non-match.
    struct Stub;
    impl Annotator for Stub {
        fn name(&self) -> &str {
            "stub"
        }
        fn rank_candidates(
            &self,
            _query: &[String],
            candidates: &[ConceptId],
        ) -> Vec<(ConceptId, f32)> {
            let mut out: Vec<(ConceptId, f32)> = candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 != 2)
                .map(|(i, &c)| (c, -(i as f32)))
                .collect();
            out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            out
        }
        fn universe(&self) -> Vec<ConceptId> {
            Vec::new()
        }
    }

    #[test]
    fn maps_subset_rankings_back_to_candidate_positions() {
        let cands: Vec<ConceptId> = (0..5).map(ConceptId).collect();
        let q = vec!["x".to_string()];
        let out = AnnotatorScore::new(&Stub).score(ScoreRequest {
            query: &q,
            candidates: &cands,
            deadline: None,
        });
        assert_eq!(out.scores.len(), 5);
        // Positions 2 of each triple are non-matches.
        assert_eq!(out.scores[0], Some(0.0));
        assert_eq!(out.scores[1], Some(-1.0));
        assert_eq!(out.scores[2], None);
        assert_eq!(out.scores[3], Some(-3.0));
        assert_eq!(out.scores[4], Some(-4.0));
        assert!(out.unscored_is_nonmatch);
        assert_eq!(out.lost_jobs, 0);
    }
}
