//! NC: dictionary-based concept recognition in the NOBLECoder style.
//!
//! §6.4 of the NCL paper: "As a dictionary based method, NC relies on two
//! hash tables (i.e., the word-to-term table and the term-to-concept
//! table) to conduct concept linking according to the alignment of
//! individual words." A *term* is one dictionary string of a concept (its
//! canonical description or a KB alias). A term matches a query when all
//! of its content words are found among the query's words (NOBLE's
//! "best-match" word alignment, order-free); matched terms vote for their
//! concepts.
//!
//! Because matching is exact at the word level, out-of-dictionary words
//! (`ckd`, typos) contribute nothing — reproducing the failure modes of
//! Figure 1 (q1 unmatched; q5 matched to two sibling concepts).

use crate::Annotator;
use ncl_ontology::{ConceptId, Ontology};
use ncl_text::tokenize;
use std::collections::{HashMap, HashSet};

/// One dictionary term.
#[derive(Debug, Clone)]
struct Term {
    words: Vec<String>,
    concept: ConceptId,
}

/// The NC annotator.
#[derive(Debug, Clone)]
pub struct NobleCoder {
    /// word → term ids containing it (the word-to-term table).
    word_to_terms: HashMap<String, Vec<usize>>,
    /// term id → term (the term-to-concept table keys off this).
    terms: Vec<Term>,
    universe: Vec<ConceptId>,
}

impl NobleCoder {
    /// Builds the dictionary from every fine-grained concept's canonical
    /// description and aliases.
    pub fn build(ontology: &Ontology) -> Self {
        let mut terms = Vec::new();
        let mut word_to_terms: HashMap<String, Vec<usize>> = HashMap::new();
        let universe = ontology.fine_grained();
        for &id in &universe {
            let c = ontology.concept(id);
            let mut strings = vec![c.canonical.clone()];
            strings.extend(c.aliases.iter().cloned());
            for s in strings {
                let words = tokenize(&s);
                if words.is_empty() {
                    continue;
                }
                let tid = terms.len();
                for w in &words {
                    let entry = word_to_terms.entry(w.clone()).or_default();
                    if entry.last() != Some(&tid) {
                        entry.push(tid);
                    }
                }
                terms.push(Term { words, concept: id });
            }
        }
        Self {
            word_to_terms,
            terms,
            universe,
        }
    }

    /// Number of dictionary terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Scores a query against the dictionary: for every term sharing at
    /// least one word with the query, test full containment of the term's
    /// words in the query's word set; matched terms vote for their
    /// concept with the term's length (longer matched terms are more
    /// specific). Falls back to partial overlap voting when no term fully
    /// matches (NOBLE's partial-match mode), which is what produces the
    /// paper's spurious multi-concept linkings.
    fn score(&self, query: &[String]) -> HashMap<ConceptId, f32> {
        let qset: HashSet<&str> = query.iter().map(|s| s.as_str()).collect();
        let mut candidate_terms: HashSet<usize> = HashSet::new();
        for w in &qset {
            if let Some(tids) = self.word_to_terms.get(*w) {
                candidate_terms.extend(tids.iter().copied());
            }
        }
        let mut full: HashMap<ConceptId, f32> = HashMap::new();
        let mut partial: HashMap<ConceptId, f32> = HashMap::new();
        for &tid in &candidate_terms {
            let term = &self.terms[tid];
            let matched = term
                .words
                .iter()
                .filter(|w| qset.contains(w.as_str()))
                .count();
            if matched == term.words.len() {
                let e = full.entry(term.concept).or_insert(0.0);
                *e = e.max(term.words.len() as f32);
            } else if matched > 0 {
                let frac = matched as f32 / term.words.len() as f32;
                let e = partial.entry(term.concept).or_insert(0.0);
                *e = e.max(frac);
            }
        }
        if !full.is_empty() {
            full
        } else {
            partial
        }
    }
}

impl Annotator for NobleCoder {
    fn name(&self) -> &str {
        "NC"
    }

    fn rank_candidates(&self, query: &[String], candidates: &[ConceptId]) -> Vec<(ConceptId, f32)> {
        let scores = self.score(query);
        let mut ranked: Vec<(ConceptId, f32)> = candidates
            .iter()
            .filter_map(|c| scores.get(c).map(|&s| (*c, s)))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked
    }

    fn universe(&self) -> Vec<ConceptId> {
        self.universe.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_ontology::OntologyBuilder;

    fn world() -> Ontology {
        let mut b = OntologyBuilder::new();
        let n18 = b.add_root_concept("N18", "chronic kidney disease");
        let n185 = b.add_child(n18, "N18.5", "chronic kidney disease stage 5");
        b.add_alias(n185, "kidney disease stage 5");
        let r10 = b.add_root_concept("R10", "abdominal pain");
        let r109 = b.add_child(r10, "R10.9", "unspecified abdominal pain");
        b.add_alias(r109, "abdomen pain");
        let d50 = b.add_root_concept("D50", "iron deficiency anemia");
        b.add_child(d50, "D50.9", "iron deficiency anemia unspecified");
        let n92 = b.add_root_concept("N92", "menstrual disorders");
        b.add_child(n92, "N92.0", "excessive menstruation menorrhagia");
        b.build().unwrap()
    }

    #[test]
    fn exact_dictionary_term_links() {
        let o = world();
        let nc = NobleCoder::build(&o);
        let ranked = nc.rank(&tokenize("abdomen pain"), 5);
        assert_eq!(ranked[0].0, o.by_code("R10.9").unwrap());
    }

    #[test]
    fn out_of_dictionary_words_fail() {
        // Figure 1's q1: "ckd 5" — "ckd" is not in the word-to-term table.
        let o = world();
        let nc = NobleCoder::build(&o);
        let ranked = nc.rank(&tokenize("ckd 5"), 5);
        // Only the number "5" overlaps; the right concept may appear but
        // only via a weak partial match — exact-term linking fails.
        assert!(ranked.iter().all(|(_, s)| *s < 1.0 || ranked.is_empty()));
    }

    #[test]
    fn ambiguous_words_produce_multiple_concepts() {
        // Figure 1's q5 pattern: words vote for several concepts at once.
        let o = world();
        let nc = NobleCoder::build(&o);
        let ranked = nc.rank(&tokenize("anemia menorrhagia"), 5);
        assert!(
            ranked.len() >= 2,
            "expected multi-concept link, got {ranked:?}"
        );
    }

    #[test]
    fn longer_full_matches_rank_higher() {
        let o = world();
        let nc = NobleCoder::build(&o);
        let ranked = nc.rank(&tokenize("chronic kidney disease stage 5"), 5);
        assert_eq!(ranked[0].0, o.by_code("N18.5").unwrap());
    }

    #[test]
    fn gibberish_matches_nothing() {
        let o = world();
        let nc = NobleCoder::build(&o);
        assert!(nc.rank(&tokenize("zzz qqq"), 5).is_empty());
    }

    #[test]
    fn universe_is_fine_grained() {
        let o = world();
        let nc = NobleCoder::build(&o);
        assert_eq!(nc.universe().len(), o.fine_grained().len());
        assert!(nc.num_terms() >= o.fine_grained().len());
        assert_eq!(nc.name(), "NC");
    }
}
