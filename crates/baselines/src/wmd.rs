//! WMD: Word Mover's Distance (Kusner et al., ICML 2015).
//!
//! WMD measures document dissimilarity as the minimum cumulative
//! embedding distance needed to "move" one document's word histogram onto
//! another's. We implement the **relaxed WMD (RWMD)** — the maximum of
//! the two one-sided relaxations, each solvable greedily by sending every
//! word's mass to its nearest counterpart — which Kusner et al. show is a
//! tight lower bound and themselves use for ranking (substitution
//! recorded in DESIGN.md). For the short snippets of this task RWMD is
//! near-exact.
//!
//! §6.4 observes WMD's accuracy stays low because "the word discrepancy
//! compromises the effectiveness of word-level semantic distance"; the
//! embedding quality knob `d` is swept in Figure 7.

use crate::Annotator;
use ncl_ontology::{ConceptId, Ontology};
use ncl_tensor::{Matrix, Vector};
use ncl_text::{tokenize, Vocab};
use std::collections::HashMap;

/// Normalised bag-of-words: word id → mass (sums to 1).
type Nbow = Vec<(u32, f32)>;

/// The WMD baseline.
#[derive(Debug, Clone)]
pub struct Wmd {
    embeddings: Matrix,
    vocab: Vocab,
    /// Per concept: nBOW of its canonical description (+ aliases merged).
    docs: Vec<(ConceptId, Nbow)>,
}

fn nbow(tokens: &[String], vocab: &Vocab) -> Nbow {
    let mut counts: HashMap<u32, f32> = HashMap::new();
    let mut total = 0.0f32;
    for t in tokens {
        if let Some(id) = vocab.get(t) {
            *counts.entry(id).or_insert(0.0) += 1.0;
            total += 1.0;
        }
    }
    if total == 0.0 {
        return Vec::new();
    }
    let mut v: Vec<(u32, f32)> = counts.into_iter().map(|(id, c)| (id, c / total)).collect();
    v.sort_by_key(|&(id, _)| id);
    v
}

impl Wmd {
    /// Builds the baseline over fine-grained concepts. `embeddings` rows
    /// align with `vocab` (typically CBOW output, as in the NCL paper).
    pub fn build(ontology: &Ontology, vocab: Vocab, embeddings: Matrix) -> Self {
        assert_eq!(
            embeddings.rows(),
            vocab.len(),
            "wmd: embedding/vocab mismatch"
        );
        // Only canonical descriptions: §6.4 measures WMD between the
        // query and the concept description (aliases are NCL's training
        // data, not WMD's documents).
        let mut docs = Vec::new();
        for id in ontology.fine_grained() {
            let c = ontology.concept(id);
            let toks = tokenize(&c.canonical);
            docs.push((id, nbow(&toks, &vocab)));
        }
        Self {
            embeddings,
            vocab,
            docs,
        }
    }

    fn word_vec(&self, id: u32) -> Vector {
        self.embeddings.row_vector(id as usize)
    }

    /// Euclidean distance between two word embeddings.
    fn word_dist(&self, a: u32, b: u32) -> f32 {
        if a == b {
            return 0.0;
        }
        self.word_vec(a).sub(&self.word_vec(b)).norm()
    }

    /// One-sided relaxation: every source word sends all mass to its
    /// nearest target word.
    fn one_sided(&self, from: &Nbow, to: &Nbow) -> f32 {
        let mut cost = 0.0f32;
        for &(wa, mass) in from {
            let nearest = to
                .iter()
                .map(|&(wb, _)| self.word_dist(wa, wb))
                .fold(f32::INFINITY, f32::min);
            cost += mass * nearest;
        }
        cost
    }

    /// Relaxed WMD: `max(one_sided(a→b), one_sided(b→a))`. Returns
    /// `f32::INFINITY` when either histogram is empty (no shared
    /// vocabulary support).
    pub fn distance(&self, a: &Nbow, b: &Nbow) -> f32 {
        if a.is_empty() || b.is_empty() {
            return f32::INFINITY;
        }
        self.one_sided(a, b).max(self.one_sided(b, a))
    }

    /// nBOW of an arbitrary query under this model's vocabulary.
    pub fn query_nbow(&self, query: &[String]) -> Nbow {
        nbow(query, &self.vocab)
    }
}

impl Annotator for Wmd {
    fn name(&self) -> &str {
        "WMD"
    }

    fn rank_candidates(&self, query: &[String], candidates: &[ConceptId]) -> Vec<(ConceptId, f32)> {
        let q = self.query_nbow(query);
        let mut ranked: Vec<(ConceptId, f32)> = self
            .docs
            .iter()
            .filter(|(id, _)| candidates.contains(id))
            .map(|(id, doc)| (*id, -self.distance(&q, doc)))
            .filter(|(_, s)| s.is_finite())
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked
    }

    fn rank(&self, query: &[String], k: usize) -> Vec<(ConceptId, f32)> {
        let q = self.query_nbow(query);
        let mut ranked: Vec<(ConceptId, f32)> = self
            .docs
            .iter()
            .map(|(id, doc)| (*id, -self.distance(&q, doc)))
            .filter(|(_, s)| s.is_finite())
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }

    fn universe(&self) -> Vec<ConceptId> {
        self.docs.iter().map(|(id, _)| *id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_ontology::OntologyBuilder;

    /// Builds an ontology plus hand-crafted embeddings where
    /// kidney≈renal and anemia is far away.
    fn world() -> (Ontology, Vocab, Matrix) {
        let mut b = OntologyBuilder::new();
        let n18 = b.add_root_concept("N18", "kidney disease");
        b.add_child(n18, "N18.5", "kidney disease stage");
        let d50 = b.add_root_concept("D50", "iron anemia");
        b.add_child(d50, "D50.0", "iron anemia blood");
        let o = b.build().unwrap();

        let mut v = Vocab::new();
        for w in [
            "kidney", "disease", "stage", "iron", "anemia", "blood", "renal",
        ] {
            v.add(w);
        }
        let d = 2;
        let mut e = Matrix::zeros(v.len(), d);
        let set = |e: &mut Matrix, v: &Vocab, w: &str, x: f32, y: f32| {
            let id = v.get(w).unwrap() as usize;
            e[(id, 0)] = x;
            e[(id, 1)] = y;
        };
        set(&mut e, &v, "kidney", 1.0, 0.0);
        set(&mut e, &v, "renal", 0.95, 0.05); // near-synonym
        set(&mut e, &v, "disease", 0.8, 0.3);
        set(&mut e, &v, "stage", 0.7, 0.5);
        set(&mut e, &v, "iron", -1.0, 0.2);
        set(&mut e, &v, "anemia", -0.9, 0.1);
        set(&mut e, &v, "blood", -0.8, 0.4);
        (o, v, e)
    }

    #[test]
    fn identical_documents_have_zero_distance() {
        let (o, v, e) = world();
        let w = Wmd::build(&o, v, e);
        let q = w.query_nbow(&tokenize("kidney disease stage"));
        assert_eq!(w.distance(&q, &q), 0.0);
    }

    #[test]
    fn synonym_query_ranks_right_concept() {
        let (o, v, e) = world();
        let w = Wmd::build(&o, v, e);
        // "renal" is OOV for the documents but lives near "kidney" in the
        // embedding space — WMD's selling point.
        let ranked = w.rank(&tokenize("renal disease stage"), 2);
        assert_eq!(ranked[0].0, o.by_code("N18.5").unwrap());
    }

    #[test]
    fn semantically_far_query_ranks_far_concept_lower() {
        let (o, v, e) = world();
        let w = Wmd::build(&o, v, e);
        let ranked = w.rank(&tokenize("iron anemia blood"), 2);
        assert_eq!(ranked[0].0, o.by_code("D50.0").unwrap());
    }

    #[test]
    fn oov_only_query_matches_nothing() {
        let (o, v, e) = world();
        let w = Wmd::build(&o, v, e);
        assert!(w.rank(&tokenize("zzz"), 2).is_empty());
    }

    #[test]
    fn distance_is_symmetric_and_nonnegative() {
        let (o, v, e) = world();
        let w = Wmd::build(&o, v, e);
        let a = w.query_nbow(&tokenize("kidney disease"));
        let b = w.query_nbow(&tokenize("iron anemia"));
        let dab = w.distance(&a, &b);
        let dba = w.distance(&b, &a);
        assert!((dab - dba).abs() < 1e-6);
        assert!(dab > 0.0);
    }

    #[test]
    fn empty_histogram_gives_infinite_distance() {
        let (o, v, e) = world();
        let w = Wmd::build(&o, v, e);
        let q = w.query_nbow(&tokenize("kidney"));
        assert_eq!(w.distance(&q, &Vec::new()), f32::INFINITY);
    }
}
