#![warn(missing_docs)]

//! # ncl-baselines
//!
//! The comparison methods of §6.4 of *Fine-grained Concept Linking using
//! Neural Networks in Healthcare* (Dai et al., SIGMOD 2018), implemented
//! from their source papers:
//!
//! * [`noblecoder`] — **NC**: the dictionary-based annotator in the style
//!   of NOBLECoder (Tseytlin et al., 2016): word-to-term and
//!   term-to-concept hash tables over the KB dictionary,
//! * [`pkduck`] — **pkduck** (Tao, Deng, Stonebraker, VLDB 2018):
//!   approximate string joins whose token matching admits
//!   prefix-abbreviation rules, thresholded at `θ`,
//! * [`wmd`] — **WMD** (Kusner et al., ICML 2015): the relaxed Word
//!   Mover's Distance over word embeddings (the tight RWMD bound the
//!   original paper itself ranks with; substitution noted in DESIGN.md),
//! * [`doc2vec`] — **Doc2Vec** (Le & Mikolov, ICML 2014): PV-DBOW
//!   paragraph vectors with negative sampling and fresh-vector inference
//!   for queries,
//! * [`lr`] — **LR⁺**: the logistic-regression string matcher of
//!   Tsuruoka et al. (2007) with the paper's textual features (character
//!   bigrams, prefix/suffix, shared numbers, acronym) extended with the
//!   structural features the NCL authors add (the same features computed
//!   against the concept's ancestors).
//!
//! The seq2seq \[40\] and attentional-NMT \[2\] baselines are, as in §6.3 of
//! the paper, the `NoBoth` and `NoStruct` variants of COM-AID in
//! `ncl-core`.
//!
//! All baselines implement [`Annotator`], so the experiment harness can
//! sweep them uniformly; [`scorer::AnnotatorScore`] additionally adapts
//! any annotator to the staged serving engine's `ScoreStage` interface,
//! so baselines re-rank NCL's Phase-I candidates through the *same*
//! pipeline (rewriting, retrieval, budgets, degradation) as COM-AID.

pub mod combined;
pub mod doc2vec;
pub mod lr;
pub mod noblecoder;
pub mod pkduck;
pub mod scorer;
pub mod wmd;

use ncl_ontology::ConceptId;

/// A concept annotator: ranks candidate concepts for a query.
pub trait Annotator {
    /// Short display name (matches the paper's figure legends).
    fn name(&self) -> &str;

    /// Ranks `candidates` for the query, best first, with scores
    /// (higher = better). Implementations may return fewer entries than
    /// candidates when some score as complete non-matches.
    fn rank_candidates(&self, query: &[String], candidates: &[ConceptId]) -> Vec<(ConceptId, f32)>;

    /// Ranks the annotator's whole concept universe, truncated to `k`.
    fn rank(&self, query: &[String], k: usize) -> Vec<(ConceptId, f32)> {
        let all = self.universe();
        let mut ranked = self.rank_candidates(query, &all);
        ranked.truncate(k);
        ranked
    }

    /// The full set of concepts this annotator can link to.
    fn universe(&self) -> Vec<ConceptId>;
}

pub use combined::{Combined, Fusion};
pub use doc2vec::Doc2Vec;
pub use lr::LrPlus;
pub use noblecoder::NobleCoder;
pub use pkduck::Pkduck;
pub use scorer::AnnotatorScore;
pub use wmd::Wmd;
