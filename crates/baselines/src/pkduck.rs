//! pkduck: approximate string joins with abbreviations
//! (Tao, Deng, Stonebraker — PVLDB 11(1), 2018).
//!
//! pkduck generalises Jaccard set similarity so that a token can match a
//! token it *abbreviates* under a rule set (prefix rules such as `def` ⊑
//! `deficiency`, plus dictionary rules like `ckd` ⊑ `chronic kidney
//! disease`). Two strings join when their pkduck similarity reaches a
//! threshold `θ`; §6.4 of the NCL paper sweeps `θ ∈ {0.1 … 0.5}` and
//! observes the accuracy/MRR trade-off this module reproduces: small `θ`
//! joins more (higher recall, noisier top-1), large `θ` joins only
//! near-exact strings.

use crate::Annotator;
use ncl_ontology::{ConceptId, Ontology};
use ncl_text::abbrev::{is_prefix_abbrev, is_subsequence_abbrev};
use ncl_text::tokenize;

/// The pkduck join baseline.
#[derive(Debug, Clone)]
pub struct Pkduck {
    /// Per concept: its dictionary strings (canonical first).
    strings: Vec<(ConceptId, Vec<Vec<String>>)>,
    /// Join threshold θ.
    theta: f32,
    /// Dictionary abbreviation rules (abbr tokens → full tokens), from
    /// `ncl_datagen`'s lexicon shape: multi-token phrases allowed.
    rules: Vec<(Vec<String>, Vec<String>)>,
}

/// Token-level abbreviation test: equal, prefix rule (≥ 2 chars), or
/// first-letter subsequence rule.
fn token_matches(q: &str, t: &str) -> bool {
    if q == t {
        return true;
    }
    (q.len() >= 2 && is_prefix_abbrev(q, t)) || (q.len() >= 3 && is_subsequence_abbrev(q, t))
}

impl Pkduck {
    /// Builds the join over all fine-grained concepts with threshold
    /// `theta` and optional phrase rules (`(abbreviation, expansion)`
    /// pairs, e.g. `("ckd", "chronic kidney disease")`).
    ///
    /// Only **canonical** descriptions are joined against: §6.4 of the
    /// NCL paper describes pkduck as joining queries with "canonical
    /// concept descriptions" (the KB aliases are NCL's training data,
    /// not pkduck's dictionary).
    pub fn build(ontology: &Ontology, theta: f32, phrase_rules: &[(&str, &str)]) -> Self {
        let mut strings = Vec::new();
        for id in ontology.fine_grained() {
            let c = ontology.concept(id);
            let forms = vec![tokenize(&c.canonical)];
            strings.push((id, forms));
        }
        let rules = phrase_rules
            .iter()
            .map(|(a, f)| (tokenize(a), tokenize(f)))
            .collect();
        Self {
            strings,
            theta,
            rules,
        }
    }

    /// The join threshold.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// pkduck similarity between a query and one dictionary string:
    /// the best Jaccard achievable after optionally expanding query
    /// tokens by the abbreviation rules. Greedy one-to-one token
    /// alignment (each description token may be consumed once).
    pub fn similarity(&self, query: &[String], target: &[Vec<String>]) -> f32 {
        target
            .iter()
            .map(|t| self.pair_similarity(query, t))
            .fold(0.0, f32::max)
    }

    fn pair_similarity(&self, query: &[String], target: &[String]) -> f32 {
        if query.is_empty() || target.is_empty() {
            return 0.0;
        }
        // Apply dictionary phrase rules to the query (derived string with
        // the largest similarity is taken — here: expand every
        // applicable rule, which only helps Jaccard against the full
        // form).
        let mut q: Vec<String> = Vec::with_capacity(query.len());
        let mut i = 0;
        'outer: while i < query.len() {
            for (abbr, full) in &self.rules {
                if !abbr.is_empty()
                    && i + abbr.len() <= query.len()
                    && query[i..i + abbr.len()] == abbr[..]
                {
                    q.extend(full.iter().cloned());
                    i += abbr.len();
                    continue 'outer;
                }
            }
            q.push(query[i].clone());
            i += 1;
        }

        // Greedy one-to-one alignment with abbreviation-aware matching.
        let mut used = vec![false; target.len()];
        let mut matched = 0usize;
        for qw in &q {
            // Exact matches first.
            if let Some(j) = target
                .iter()
                .enumerate()
                .position(|(j, tw)| !used[j] && qw == tw)
            {
                used[j] = true;
                matched += 1;
                continue;
            }
            if let Some(j) = (0..target.len()).find(|&j| !used[j] && token_matches(qw, &target[j]))
            {
                used[j] = true;
                matched += 1;
            }
        }
        matched as f32 / (q.len() + target.len() - matched) as f32
    }
}

impl Annotator for Pkduck {
    fn name(&self) -> &str {
        "pkduck"
    }

    fn rank_candidates(&self, query: &[String], candidates: &[ConceptId]) -> Vec<(ConceptId, f32)> {
        let mut ranked: Vec<(ConceptId, f32)> = self
            .strings
            .iter()
            .filter(|(id, _)| candidates.contains(id))
            .map(|(id, forms)| (*id, self.similarity(query, forms)))
            .filter(|(_, s)| *s >= self.theta)
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked
    }

    fn rank(&self, query: &[String], k: usize) -> Vec<(ConceptId, f32)> {
        let mut ranked: Vec<(ConceptId, f32)> = self
            .strings
            .iter()
            .map(|(id, forms)| (*id, self.similarity(query, forms)))
            .filter(|(_, s)| *s >= self.theta)
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }

    fn universe(&self) -> Vec<ConceptId> {
        self.strings.iter().map(|(id, _)| *id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_ontology::OntologyBuilder;

    fn world() -> Ontology {
        let mut b = OntologyBuilder::new();
        let n18 = b.add_root_concept("N18", "chronic kidney disease");
        b.add_child(n18, "N18.5", "chronic kidney disease stage 5");
        let d50 = b.add_root_concept("D50", "iron deficiency anemia");
        b.add_child(
            d50,
            "D50.0",
            "iron deficiency anemia secondary to blood loss",
        );
        let d53 = b.add_root_concept("D53", "other nutritional anemias");
        b.add_child(d53, "D53.0", "protein deficiency anemia");
        b.build().unwrap()
    }

    const RULES: &[(&str, &str)] = &[("ckd", "chronic kidney disease")];

    #[test]
    fn exact_string_has_similarity_one() {
        let o = world();
        let pk = Pkduck::build(&o, 0.1, RULES);
        let ranked = pk.rank(&tokenize("chronic kidney disease stage 5"), 3);
        assert_eq!(ranked[0].0, o.by_code("N18.5").unwrap());
        assert!((ranked[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dictionary_rule_expands_ckd() {
        let o = world();
        let pk = Pkduck::build(&o, 0.1, RULES);
        let ranked = pk.rank(&tokenize("ckd stage 5"), 3);
        assert_eq!(ranked[0].0, o.by_code("N18.5").unwrap());
        assert!((ranked[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn prefix_abbreviations_match() {
        let o = world();
        let pk = Pkduck::build(&o, 0.1, RULES);
        // "def" abbreviates "deficiency".
        let ranked = pk.rank(&tokenize("protein def anemia"), 3);
        assert_eq!(ranked[0].0, o.by_code("D53.0").unwrap());
    }

    #[test]
    fn paper_dangling_word_pathology() {
        // §6.4: "chr iron deficiency anemia" scores higher against
        // "protein deficiency anemia" than the paper would like —
        // shared-word counting dominates.
        let o = world();
        let pk = Pkduck::build(&o, 0.1, RULES);
        let q = tokenize("chr iron deficiency anemia");
        let d530 = pk.similarity(&q, &[tokenize("protein deficiency anemia")]);
        let d500 = pk.similarity(
            &q,
            &[tokenize("iron deficiency anemia secondary to blood loss")],
        );
        // Both are mediocre; the short string with shared words is
        // competitive with (here ties or beats) the true long concept.
        assert!(d530 >= d500 - 0.1, "d530={d530}, d500={d500}");
    }

    #[test]
    fn theta_filters_weak_joins() {
        let o = world();
        let loose = Pkduck::build(&o, 0.1, RULES);
        let strict = Pkduck::build(&o, 0.5, RULES);
        let q = tokenize("anemia");
        assert!(loose.rank(&q, 10).len() > strict.rank(&q, 10).len());
        assert_eq!(strict.theta(), 0.5);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let o = world();
        let pk = Pkduck::build(&o, 0.1, RULES);
        assert!(pk.rank(&[], 5).is_empty());
    }

    #[test]
    fn similarity_symmetric_bounds() {
        let o = world();
        let pk = Pkduck::build(&o, 0.1, RULES);
        let s = pk.pair_similarity(
            &tokenize("iron anemia"),
            &tokenize("iron deficiency anemia"),
        );
        assert!((0.0..=1.0).contains(&s));
        assert!((s - 2.0 / 3.0).abs() < 1e-6);
    }
}
