//! Combined annotators (the third category of §2.2).
//!
//! "Combined annotators [24, 27] combine multiple annotators that may
//! complement each other to improve the overall annotation quality. As a
//! concept linking method, our proposed NCL can also be combined with the
//! other annotators." This module implements the standard aggregation
//! scheme for heterogeneous rankers — **reciprocal-rank fusion** (RRF) —
//! plus a weighted **Borda count** variant, so NCL's output list can be
//! reconciled with the dictionary and string-join baselines.

use crate::Annotator;
use ncl_ontology::ConceptId;
use std::collections::HashMap;

/// How member rankings are aggregated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fusion {
    /// Reciprocal-rank fusion: `score(c) = Σ_i w_i / (k + rank_i(c))`.
    /// The damping constant `k` (conventionally 60) limits the dominance
    /// of any single ranker's top hit.
    ReciprocalRank {
        /// Damping constant.
        k: f32,
    },
    /// Borda count: each member awards `(n − rank)` points.
    Borda,
}

/// An ensemble of annotators fused into one ranking.
pub struct Combined<'a> {
    members: Vec<(&'a dyn Annotator, f32)>,
    fusion: Fusion,
    depth: usize,
}

impl<'a> Combined<'a> {
    /// Creates an ensemble. `depth` is how many results are requested
    /// from each member per query.
    ///
    /// # Panics
    /// Panics if `members` is empty or any weight is non-positive.
    pub fn new(members: Vec<(&'a dyn Annotator, f32)>, fusion: Fusion, depth: usize) -> Self {
        assert!(!members.is_empty(), "combined: no members");
        assert!(
            members.iter().all(|&(_, w)| w > 0.0),
            "combined: weights must be positive"
        );
        Self {
            members,
            fusion,
            depth,
        }
    }

    /// Equal-weight ensemble with RRF at the conventional `k = 60`.
    pub fn rrf(members: Vec<&'a dyn Annotator>, depth: usize) -> Self {
        Self::new(
            members.into_iter().map(|m| (m, 1.0)).collect(),
            Fusion::ReciprocalRank { k: 60.0 },
            depth,
        )
    }

    fn fuse(&self, lists: Vec<Vec<(ConceptId, f32)>>) -> Vec<(ConceptId, f32)> {
        let mut scores: HashMap<ConceptId, f32> = HashMap::new();
        for ((_, weight), list) in self.members.iter().zip(&lists) {
            let n = list.len();
            for (rank0, &(c, _)) in list.iter().enumerate() {
                let contribution = match self.fusion {
                    Fusion::ReciprocalRank { k } => weight / (k + (rank0 + 1) as f32),
                    Fusion::Borda => weight * (n - rank0) as f32,
                };
                *scores.entry(c).or_insert(0.0) += contribution;
            }
        }
        let mut out: Vec<(ConceptId, f32)> = scores.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }
}

impl<'a> Annotator for Combined<'a> {
    fn name(&self) -> &str {
        "Combined"
    }

    fn rank_candidates(&self, query: &[String], candidates: &[ConceptId]) -> Vec<(ConceptId, f32)> {
        let lists = self
            .members
            .iter()
            .map(|(m, _)| m.rank_candidates(query, candidates))
            .collect();
        self.fuse(lists)
    }

    fn rank(&self, query: &[String], k: usize) -> Vec<(ConceptId, f32)> {
        let lists = self
            .members
            .iter()
            .map(|(m, _)| m.rank(query, self.depth))
            .collect();
        let mut out = self.fuse(lists);
        out.truncate(k);
        out
    }

    fn universe(&self) -> Vec<ConceptId> {
        let mut all: Vec<ConceptId> = self
            .members
            .iter()
            .flat_map(|(m, _)| m.universe())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(i: u32) -> ConceptId {
        ConceptId(i)
    }

    /// A stub annotator returning a fixed ranking.
    struct Fixed {
        name: &'static str,
        ranking: Vec<ConceptId>,
    }

    impl Annotator for Fixed {
        fn name(&self) -> &str {
            self.name
        }
        fn rank_candidates(
            &self,
            _query: &[String],
            candidates: &[ConceptId],
        ) -> Vec<(ConceptId, f32)> {
            self.ranking
                .iter()
                .filter(|c| candidates.contains(c))
                .enumerate()
                .map(|(i, &c)| (c, 1.0 / (i + 1) as f32))
                .collect()
        }
        fn universe(&self) -> Vec<ConceptId> {
            self.ranking.clone()
        }
    }

    fn members() -> (Fixed, Fixed, Fixed) {
        (
            Fixed {
                name: "a",
                ranking: vec![cid(1), cid(2), cid(3)],
            },
            Fixed {
                name: "b",
                ranking: vec![cid(2), cid(1), cid(3)],
            },
            Fixed {
                name: "c",
                ranking: vec![cid(2), cid(3), cid(1)],
            },
        )
    }

    #[test]
    fn rrf_majority_wins() {
        let (a, b, c) = members();
        let ens = Combined::rrf(vec![&a, &b, &c], 5);
        let out = ens.rank(&["q".into()], 3);
        // cid(2) is first for two of three members.
        assert_eq!(out[0].0, cid(2));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn borda_agrees_on_clear_majority() {
        let (a, b, c) = members();
        let ens = Combined::new(vec![(&a, 1.0), (&b, 1.0), (&c, 1.0)], Fusion::Borda, 5);
        let out = ens.rank(&["q".into()], 3);
        assert_eq!(out[0].0, cid(2));
    }

    #[test]
    fn weights_bias_the_fusion() {
        let (a, b, _) = members();
        // Heavily weight member `a` (which ranks cid(1) first).
        let ens = Combined::new(
            vec![(&a, 10.0), (&b, 1.0)],
            Fusion::ReciprocalRank { k: 60.0 },
            5,
        );
        let out = ens.rank(&["q".into()], 3);
        assert_eq!(out[0].0, cid(1));
    }

    #[test]
    fn candidate_restriction_respected() {
        let (a, b, c) = members();
        let ens = Combined::rrf(vec![&a, &b, &c], 5);
        let out = ens.rank_candidates(&["q".into()], &[cid(3)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, cid(3));
    }

    #[test]
    fn universe_is_union() {
        let (a, b, _) = members();
        let extra = Fixed {
            name: "d",
            ranking: vec![cid(9)],
        };
        let ens = Combined::rrf(vec![&a, &b, &extra], 5);
        let u = ens.universe();
        assert!(u.contains(&cid(9)));
        assert!(u.contains(&cid(1)));
        // De-duplicated.
        let mut dedup = u.clone();
        dedup.dedup();
        assert_eq!(u.len(), dedup.len());
    }

    #[test]
    #[should_panic(expected = "no members")]
    fn empty_ensemble_panics() {
        let _ = Combined::rrf(vec![], 5);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn nonpositive_weight_panics() {
        let (a, _, _) = members();
        let _ = Combined::new(vec![(&a, 0.0)], Fusion::Borda, 5);
    }
}
