//! Doc2Vec: PV-DBOW paragraph vectors (Le & Mikolov, ICML 2014).
//!
//! Each concept's description set is one *document* with a learned
//! vector; PV-DBOW trains the document vector to predict the document's
//! words under negative sampling. A query is linked by inferring a fresh
//! vector for it (gradient steps with the word matrix frozen) and
//! ranking concepts by cosine similarity.
//!
//! §6.4: Doc2Vec stays below 0.12 accuracy because "the semantic
//! overlapping between the fine-grained concepts makes the document-level
//! semantic similarity difficult to distinguish them" — sibling leaves
//! share almost all words, so their document vectors nearly coincide;
//! the tests verify exactly that failure mode.

use crate::Annotator;
use ncl_ontology::{ConceptId, Ontology};
use ncl_tensor::ops::sigmoid;
use ncl_tensor::{init, Matrix, Vector};
use ncl_text::{tokenize, Vocab};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// PV-DBOW hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct Doc2VecConfig {
    /// Vector dimensionality (Figure 7 sweeps this; the paper's best is
    /// d = 90).
    pub dim: usize,
    /// Negative samples per positive.
    pub negative: usize,
    /// Training epochs over the documents.
    pub epochs: usize,
    /// Inference epochs for a query vector.
    pub infer_epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Doc2VecConfig {
    fn default() -> Self {
        Self {
            dim: 90,
            negative: 5,
            epochs: 20,
            infer_epochs: 20,
            lr: 0.05,
            seed: 0xD0C2,
        }
    }
}

/// The trained PV-DBOW model.
#[derive(Debug, Clone)]
pub struct Doc2Vec {
    config: Doc2VecConfig,
    vocab: Vocab,
    /// Document vectors, one per fine-grained concept.
    doc_vecs: Matrix,
    /// Output word vectors (syn1).
    word_out: Matrix,
    concepts: Vec<ConceptId>,
    docs: Vec<Vec<u32>>,
    /// Unigram cumulative distribution for negative sampling.
    cdf: Vec<f64>,
}

impl Doc2Vec {
    /// Trains PV-DBOW over the fine-grained concepts of `ontology`.
    pub fn train(ontology: &Ontology, config: Doc2VecConfig) -> Self {
        let mut vocab = Vocab::new();
        let mut docs: Vec<Vec<u32>> = Vec::new();
        let mut concepts = Vec::new();
        // One document per concept: its canonical description. (The KB
        // aliases are NCL's training data; giving them to Doc2Vec too
        // would change the §6.4 comparison. Sibling fine-grained concepts
        // therefore share almost all document words — the overlap the
        // paper blames for Doc2Vec's low accuracy.)
        for id in ontology.fine_grained() {
            let c = ontology.concept(id);
            let toks = tokenize(&c.canonical);
            let ids: Vec<u32> = toks.iter().map(|t| vocab.add(t)).collect();
            if ids.is_empty() {
                continue;
            }
            concepts.push(id);
            docs.push(ids);
        }
        assert!(!docs.is_empty(), "doc2vec: no documents");

        // Unigram^0.75 negative-sampling distribution.
        let mut counts = vec![0u64; vocab.len()];
        for doc in &docs {
            for &w in doc {
                counts[w as usize] += 1;
            }
        }
        let mut cdf = Vec::with_capacity(counts.len());
        let mut acc = 0.0f64;
        for (i, &c) in counts.iter().enumerate() {
            acc += if i < 4 { 0.0 } else { (c as f64).powf(0.75) };
            cdf.push(acc);
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut doc_vecs = init::embedding_uniform(docs.len(), config.dim, &mut rng);
        let mut word_out = Matrix::zeros(vocab.len(), config.dim);

        for _ in 0..config.epochs {
            for (di, doc) in docs.iter().enumerate() {
                for &word in doc {
                    let dvec = doc_vecs.row_vector(di);
                    let mut ddoc = Vector::zeros(config.dim);
                    for s in 0..=config.negative {
                        let (target, label) = if s == 0 {
                            (word as usize, 1.0f32)
                        } else {
                            (sample(&cdf, &mut rng), 0.0)
                        };
                        let out = word_out.row_vector(target);
                        let g = (label - sigmoid(dvec.dot(&out))) * config.lr;
                        ddoc.axpy(g, &out);
                        let row = word_out.row_mut(target);
                        for (r, dv) in row.iter_mut().zip(dvec.as_slice()) {
                            *r += g * dv;
                        }
                    }
                    let row = doc_vecs.row_mut(di);
                    for (r, dv) in row.iter_mut().zip(ddoc.as_slice()) {
                        *r += dv;
                    }
                }
            }
        }

        Self {
            config,
            vocab,
            doc_vecs,
            word_out,
            concepts,
            docs,
            cdf,
        }
    }

    /// Infers a paragraph vector for a query (word matrix frozen).
    pub fn infer(&self, query: &[String]) -> Vector {
        let ids: Vec<u32> = query.iter().filter_map(|t| self.vocab.get(t)).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xF00D);
        let mut v = init::uniform_vector(self.config.dim, -0.5, 0.5, &mut rng);
        v.scale(1.0 / self.config.dim as f32);
        if ids.is_empty() {
            return v;
        }
        for _ in 0..self.config.infer_epochs {
            for &word in &ids {
                let mut dv = Vector::zeros(self.config.dim);
                for s in 0..=self.config.negative {
                    let (target, label) = if s == 0 {
                        (word as usize, 1.0f32)
                    } else {
                        (sample(&self.cdf, &mut rng), 0.0)
                    };
                    let out = self.word_out.row_vector(target);
                    let g = (label - sigmoid(v.dot(&out))) * self.config.lr;
                    dv.axpy(g, &out);
                }
                v.add_assign(&dv);
            }
        }
        v
    }

    /// The trained document vector of concept `i` (test access).
    pub fn doc_vector(&self, concept: ConceptId) -> Option<Vector> {
        self.concepts
            .iter()
            .position(|&c| c == concept)
            .map(|i| self.doc_vecs.row_vector(i))
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }
}

fn sample(cdf: &[f64], rng: &mut StdRng) -> usize {
    let total = *cdf.last().unwrap_or(&0.0);
    if total <= 0.0 {
        return cdf.len().saturating_sub(1);
    }
    let x = rng.gen_range(0.0..total);
    cdf.partition_point(|&c| c <= x)
}

impl Annotator for Doc2Vec {
    fn name(&self) -> &str {
        "Doc2Vec"
    }

    fn rank_candidates(&self, query: &[String], candidates: &[ConceptId]) -> Vec<(ConceptId, f32)> {
        let q = self.infer(query);
        let mut ranked: Vec<(ConceptId, f32)> = self
            .concepts
            .iter()
            .enumerate()
            .filter(|(_, id)| candidates.contains(id))
            .map(|(i, id)| (*id, q.cosine(&self.doc_vecs.row_vector(i))))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked
    }

    fn universe(&self) -> Vec<ConceptId> {
        self.concepts.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_ontology::OntologyBuilder;

    fn world() -> Ontology {
        let mut b = OntologyBuilder::new();
        let n18 = b.add_root_concept("N18", "chronic kidney disease");
        let n185 = b.add_child(n18, "N18.5", "chronic kidney disease stage 5");
        let n189 = b.add_child(n18, "N18.9", "chronic kidney disease unspecified");
        b.add_alias(n185, "kidney failure stage 5");
        b.add_alias(n189, "kidney failure nos");
        let d50 = b.add_root_concept("D50", "iron deficiency anemia");
        let d500 = b.add_child(d50, "D50.0", "iron deficiency anemia blood loss");
        b.add_alias(d500, "anemia from blood loss");
        b.build().unwrap()
    }

    fn config() -> Doc2VecConfig {
        Doc2VecConfig {
            dim: 12,
            epochs: 30,
            infer_epochs: 30,
            ..Doc2VecConfig::default()
        }
    }

    #[test]
    fn distinguishes_different_topics() {
        let o = world();
        let d2v = Doc2Vec::train(&o, config());
        let ranked = d2v.rank(&tokenize("iron anemia blood loss"), 3);
        assert_eq!(ranked[0].0, o.by_code("D50.0").unwrap());
    }

    /// The paper's diagnosis: sibling fine-grained concepts have nearly
    /// indistinguishable document vectors.
    #[test]
    fn sibling_documents_are_close() {
        let o = world();
        let d2v = Doc2Vec::train(&o, config());
        let a = d2v.doc_vector(o.by_code("N18.5").unwrap()).unwrap();
        let b = d2v.doc_vector(o.by_code("N18.9").unwrap()).unwrap();
        let c = d2v.doc_vector(o.by_code("D50.0").unwrap()).unwrap();
        assert!(
            a.cosine(&b) > a.cosine(&c),
            "siblings should be closer than cross-topic: {} vs {}",
            a.cosine(&b),
            a.cosine(&c)
        );
    }

    #[test]
    fn inference_is_deterministic() {
        let o = world();
        let d2v = Doc2Vec::train(&o, config());
        let q = tokenize("kidney disease");
        let a = d2v.infer(&q);
        let b = d2v.infer(&q);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn scores_are_cosines() {
        let o = world();
        let d2v = Doc2Vec::train(&o, config());
        for (_, s) in d2v.rank(&tokenize("kidney"), 10) {
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn universe_covers_fine_grained() {
        let o = world();
        let d2v = Doc2Vec::train(&o, config());
        assert_eq!(d2v.universe().len(), o.fine_grained().len());
        assert_eq!(d2v.num_docs(), 3);
        assert_eq!(d2v.name(), "Doc2Vec");
    }
}
