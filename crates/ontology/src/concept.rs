//! Concepts: identifier + canonical description + knowledge-base aliases.

/// Dense index of a concept inside an [`crate::Ontology`].
///
/// Node storage is index-based (no `Rc` cycles); `ConceptId` is a newtype
/// so ontology indices cannot be confused with word ids or document ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ConceptId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A concept `c = {cid, d^c}` (Definition in §2.1), extended with the
/// alternative descriptions (aliases) that the UMLS knowledge base supplies
/// per concept (§3, Model Training: "in UMLS … a concept may have
/// different descriptions in different standards").
#[derive(Debug, Clone)]
pub struct Concept {
    /// External code, e.g. the ICD-10-CM code `N18.5`.
    pub code: String,
    /// Canonical description `d^c`, already normalised
    /// (lower-case, no punctuation).
    pub canonical: String,
    /// Alternative descriptions from the knowledge base; training pairs
    /// are `⟨canonical, alias⟩` (§4.2, Refinement Phase).
    pub aliases: Vec<String>,
}

impl Concept {
    /// Creates a concept with no aliases.
    pub fn new(code: impl Into<String>, canonical: impl Into<String>) -> Self {
        Self {
            code: code.into(),
            canonical: canonical.into(),
            aliases: Vec::new(),
        }
    }

    /// Adds an alias, skipping duplicates and copies of the canonical
    /// description (footnote 9: a pair ⟨x, x⟩ "does not contribute to the
    /// COM-AID model").
    pub fn add_alias(&mut self, alias: impl Into<String>) -> bool {
        let alias = alias.into();
        if alias == self.canonical || self.aliases.contains(&alias) || alias.is_empty() {
            return false;
        }
        self.aliases.push(alias);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concept_id_round_trip() {
        let id = ConceptId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "#7");
    }

    #[test]
    fn add_alias_dedups() {
        let mut c = Concept::new("R10.0", "acute abdomen");
        assert!(c.add_alias("acute abdominal syndrome"));
        assert!(!c.add_alias("acute abdominal syndrome"));
        assert_eq!(c.aliases.len(), 1);
    }

    #[test]
    fn add_alias_rejects_canonical_copy() {
        let mut c = Concept::new("R10.0", "acute abdomen");
        assert!(!c.add_alias("acute abdomen"));
        assert!(c.aliases.is_empty());
    }

    #[test]
    fn add_alias_rejects_empty() {
        let mut c = Concept::new("R10.0", "acute abdomen");
        assert!(!c.add_alias(""));
    }
}
