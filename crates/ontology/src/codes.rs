//! ICD-style code manipulation.
//!
//! The paper's two ontologies are ICD-9-CM and ICD-10-CM (§6.1). Both use
//! hierarchical codes: a three-character *category* (`N18`) optionally
//! followed by a dot and further *subcategory* characters (`N18.5`,
//! `S52.521`). The synthetic ontologies of `ncl-datagen` emit the same
//! format, and the pre-training corpus interleaves these codes between
//! words (§4.2), so codes must tokenize stably.

/// The two classification revisions the paper evaluates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcdRevision {
    /// ICD-9-CM: numeric categories (`250`), subcategories up to 2 digits
    /// (`250.01`); 17,418 concepts in the paper, 14,567 fine-grained.
    Icd9,
    /// ICD-10-CM: alphanumeric categories (`N18`), subcategories up to 4
    /// characters (`S52.521A`); 93,830 concepts, 71,486 fine-grained.
    Icd10,
}

impl IcdRevision {
    /// Builds a category code from a chapter letter index and a number.
    ///
    /// ICD-10 categories are `LNN` (letter + two digits); ICD-9 categories
    /// are `NNN` (three digits).
    pub fn category_code(self, chapter: usize, number: usize) -> String {
        match self {
            Self::Icd10 => {
                let letter = (b'a' + (chapter % 26) as u8) as char;
                format!("{}{:02}", letter.to_ascii_uppercase(), number % 100)
            }
            Self::Icd9 => format!("{:03}", (chapter * 40 + number) % 1000),
        }
    }
}

/// Splits a code into `(category, subcategory)`: `"N18.5"` → `("N18",
/// Some("5"))`, `"N18"` → `("N18", None)`.
pub fn split_code(code: &str) -> (&str, Option<&str>) {
    match code.split_once('.') {
        Some((cat, sub)) if !sub.is_empty() => (cat, Some(sub)),
        Some((cat, _)) => (cat, None),
        None => (code, None),
    }
}

/// Returns the parent code of a dotted code: `"N18.5"` → `Some("N18")`,
/// and for multi-character subcategories strips one trailing character:
/// `"S52.52"` → `Some("S52.5")`. Category codes have no parent here.
pub fn parent_code(code: &str) -> Option<String> {
    let (cat, sub) = split_code(code);
    match sub {
        None => None,
        Some(s) if s.chars().count() == 1 => Some(cat.to_string()),
        Some(s) => {
            let mut chars: Vec<char> = s.chars().collect();
            chars.pop();
            let shorter: String = chars.into_iter().collect();
            Some(format!("{cat}.{shorter}"))
        }
    }
}

/// True if `a` is an ancestor code of `b` (proper prefix in the ICD
/// hierarchy sense).
pub fn is_ancestor_code(a: &str, b: &str) -> bool {
    if a == b {
        return false;
    }
    let (cat_a, sub_a) = split_code(a);
    let (cat_b, sub_b) = split_code(b);
    if cat_a != cat_b {
        return false;
    }
    match (sub_a, sub_b) {
        (None, Some(_)) => true,
        (Some(sa), Some(sb)) => sb.starts_with(sa) && sa != sb,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_code_variants() {
        assert_eq!(split_code("N18.5"), ("N18", Some("5")));
        assert_eq!(split_code("N18"), ("N18", None));
        assert_eq!(split_code("N18."), ("N18", None));
        assert_eq!(split_code("S52.521"), ("S52", Some("521")));
    }

    #[test]
    fn parent_code_chain() {
        assert_eq!(parent_code("S52.521"), Some("S52.52".into()));
        assert_eq!(parent_code("S52.52"), Some("S52.5".into()));
        assert_eq!(parent_code("S52.5"), Some("S52".into()));
        assert_eq!(parent_code("S52"), None);
    }

    #[test]
    fn ancestor_relation() {
        assert!(is_ancestor_code("N18", "N18.5"));
        assert!(is_ancestor_code("S52.5", "S52.521"));
        assert!(!is_ancestor_code("N18.5", "N18"));
        assert!(!is_ancestor_code("N18", "N18"));
        assert!(!is_ancestor_code("N18", "N19.5"));
        assert!(!is_ancestor_code("N18.5", "N18.9"));
    }

    #[test]
    fn category_code_formats() {
        assert_eq!(IcdRevision::Icd10.category_code(13, 18), "N18");
        assert_eq!(IcdRevision::Icd9.category_code(6, 10), "250");
        // Always three characters.
        assert_eq!(IcdRevision::Icd9.category_code(0, 7).len(), 3);
        assert_eq!(IcdRevision::Icd10.category_code(0, 7).len(), 3);
    }

    #[test]
    fn ancestor_is_consistent_with_parent() {
        for code in ["N18.5", "S52.521", "A00.0"] {
            let mut cur = code.to_string();
            while let Some(p) = parent_code(&cur) {
                assert!(
                    is_ancestor_code(&p, code),
                    "{p} should be ancestor of {code}"
                );
                cur = p;
            }
        }
    }
}
