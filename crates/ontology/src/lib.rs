#![warn(missing_docs)]

//! # ncl-ontology
//!
//! Tree-structured concept ontologies for the NCL reproduction of
//! *Fine-grained Concept Linking using Neural Networks in Healthcare*
//! (Dai et al., SIGMOD 2018).
//!
//! Section 2.1 of the paper defines a concept as `{cid, d^c}` — a unique
//! identifier plus a canonical description — arranged in a tree ontology
//! `O = ⟨C, E⟩` via *sub-concept* edges; a **fine-grained concept** is a
//! leaf. Definition 4.1 defines the **structural context** of a concept as
//! the path of its `β` nearest ancestors, duplicating the first-level
//! concept when the concept sits shallower than `β`. This crate implements
//! those definitions plus an ICD-style code type and a validated builder.

pub mod builder;
pub mod codes;
pub mod concept;
pub mod io;
pub mod ontology;

pub use builder::{BuildError, OntologyBuilder};
pub use concept::{Concept, ConceptId};
pub use io::LoadError;
pub use ontology::Ontology;
