//! The tree ontology `O = ⟨C, E⟩` of Section 2.1 and the structural
//! context of Definition 4.1.

use crate::concept::{Concept, ConceptId};
use std::collections::HashMap;

/// A tree-structured concept ontology.
///
/// Concepts are stored in a flat arena indexed by [`ConceptId`]; a single
/// synthetic **root** node (id 0, code `ROOT`) holds the top-level chapters
/// so the structure is always a tree even when the source classification
/// (like ICD) is a forest of chapters. The root is *not* a concept of the
/// ontology proper: it is excluded from ancestor walks and structural
/// contexts, exactly as Definition 4.1 excludes it ("the first level
/// (except the root) concept is duplicated…").
#[derive(Debug, Clone)]
pub struct Ontology {
    concepts: Vec<Concept>,
    parent: Vec<Option<ConceptId>>,
    children: Vec<Vec<ConceptId>>,
    by_code: HashMap<String, ConceptId>,
}

impl Ontology {
    pub(crate) fn from_parts(
        concepts: Vec<Concept>,
        parent: Vec<Option<ConceptId>>,
        children: Vec<Vec<ConceptId>>,
        by_code: HashMap<String, ConceptId>,
    ) -> Self {
        Self {
            concepts,
            parent,
            children,
            by_code,
        }
    }

    /// The synthetic root.
    pub const ROOT: ConceptId = ConceptId(0);

    /// Total node count, including the synthetic root.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.concepts.len() <= 1
    }

    /// Number of real concepts (excluding the root).
    pub fn num_concepts(&self) -> usize {
        self.concepts.len() - 1
    }

    /// The concept stored at `id`.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// Mutable access (used by the feedback controller to append expert
    /// aliases, Appendix A).
    pub fn concept_mut(&mut self, id: ConceptId) -> &mut Concept {
        &mut self.concepts[id.index()]
    }

    /// Looks a concept up by its external code (e.g. `"N18.5"`).
    pub fn by_code(&self, code: &str) -> Option<ConceptId> {
        self.by_code.get(code).copied()
    }

    /// Parent of `id`; `None` for the root.
    pub fn parent(&self, id: ConceptId) -> Option<ConceptId> {
        self.parent[id.index()]
    }

    /// Children of `id` in insertion order.
    pub fn children(&self, id: ConceptId) -> &[ConceptId] {
        &self.children[id.index()]
    }

    /// Whether `id` is a **fine-grained concept**: a real concept (not the
    /// root) with no sub-concepts (§2.1: `c ⤳ nil`).
    pub fn is_fine_grained(&self, id: ConceptId) -> bool {
        id != Self::ROOT && self.children[id.index()].is_empty()
    }

    /// All fine-grained concepts, in id order — the candidate set `C'` of
    /// Definition 2.1.
    pub fn fine_grained(&self) -> Vec<ConceptId> {
        (1..self.concepts.len())
            .map(|i| ConceptId(i as u32))
            .filter(|&id| self.is_fine_grained(id))
            .collect()
    }

    /// All real concepts (excluding the root), in id order.
    pub fn all_concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (1..self.concepts.len()).map(|i| ConceptId(i as u32))
    }

    /// Depth of `id`: the root has depth 0, chapters (first-level
    /// concepts) depth 1, and so on.
    pub fn depth(&self, id: ConceptId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Ancestors of `id` from nearest to farthest, excluding the root.
    pub fn ancestors(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            if p == Self::ROOT {
                break;
            }
            out.push(p);
            cur = p;
        }
        out
    }

    /// The **structural context** of Definition 4.1: the `β` ancestors
    /// `⟨c_{l−1}, …, c_{l−β}⟩` whose encoded representations feed the
    /// structure-based attention (Eq. 7). When the concept sits at depth
    /// `l < β` below the first level, "the first level (except the root)
    /// concept is duplicated till the path length … is equal to β"; for a
    /// first-level concept itself, the concept is its own first-level
    /// ancestor and is duplicated.
    ///
    /// # Panics
    /// Panics if `beta == 0` or if `id` is the root.
    pub fn structural_context(&self, id: ConceptId, beta: usize) -> Vec<ConceptId> {
        assert!(beta > 0, "structural context depth must be positive");
        assert!(id != Self::ROOT, "the root has no structural context");
        let mut path = self.ancestors(id);
        // First-level concept on the path (or the concept itself if it is
        // first-level).
        let first_level = path.last().copied().unwrap_or(id);
        while path.len() < beta {
            path.push(first_level);
        }
        path.truncate(beta);
        path
    }

    /// Maximum depth over all concepts — the paper notes "the ontology
    /// depths of ICD-9-CM and ICD-10-CM are typically less than 3 levels"
    /// when explaining why accuracy declines for β > 2 (§6.2).
    pub fn max_depth(&self) -> usize {
        self.all_concepts()
            .map(|id| self.depth(id))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over `(id, concept)` pairs excluding the root.
    pub fn iter(&self) -> impl Iterator<Item = (ConceptId, &Concept)> {
        self.concepts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, c)| (ConceptId(i as u32), c))
    }

    /// Total number of ⟨canonical, alias⟩ training pairs available.
    pub fn num_labeled_pairs(&self) -> usize {
        self.iter().map(|(_, c)| c.aliases.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OntologyBuilder;

    /// Builds the Figure 1(b) fragment: D50→D50.0, D53→{D53.0, D53.2},
    /// N18→{N18.5, N18.9}, R10→{R10.0, R10.9}.
    pub(crate) fn figure1b() -> Ontology {
        let mut b = OntologyBuilder::new();
        let d50 = b.add_root_concept("D50", "iron deficiency anemia");
        b.add_child(
            d50,
            "D50.0",
            "iron deficiency anemia secondary to blood loss",
        );
        let d53 = b.add_root_concept("D53", "other nutritional anemias");
        b.add_child(d53, "D53.0", "protein deficiency anemia");
        b.add_child(d53, "D53.2", "scorbutic anemia");
        let n18 = b.add_root_concept("N18", "chronic kidney disease");
        b.add_child(n18, "N18.5", "chronic kidney disease stage 5");
        b.add_child(n18, "N18.9", "chronic kidney disease unspecified");
        let r10 = b.add_root_concept("R10", "abdominal and pelvic pain");
        b.add_child(r10, "R10.0", "acute abdomen");
        b.add_child(r10, "R10.9", "unspecified abdominal pain");
        b.build().unwrap()
    }

    #[test]
    fn fine_grained_matches_paper_example() {
        let o = figure1b();
        let fg: Vec<&str> = o
            .fine_grained()
            .iter()
            .map(|&id| o.concept(id).code.as_str())
            .collect();
        // §2.1: "the concepts D50.0, D53.0, D53.2, N18.5, N18.9, R10.0,
        // and R10.9 are fine-grained concepts."
        assert_eq!(
            fg,
            vec!["D50.0", "D53.0", "D53.2", "N18.5", "N18.9", "R10.0", "R10.9"]
        );
    }

    #[test]
    fn inner_concepts_are_not_fine_grained() {
        let o = figure1b();
        let d50 = o.by_code("D50").unwrap();
        assert!(!o.is_fine_grained(d50));
        assert!(!o.is_fine_grained(Ontology::ROOT));
    }

    #[test]
    fn structural_context_beta1_matches_paper() {
        // "Given a depth β = 1, the structural context of concept D50.0 is
        // ⟨D50.0, D50⟩" — our representation carries the ancestors, so the
        // attended set is [D50].
        let o = figure1b();
        let d500 = o.by_code("D50.0").unwrap();
        let ctx = o.structural_context(d500, 1);
        assert_eq!(ctx.len(), 1);
        assert_eq!(o.concept(ctx[0]).code, "D50");
    }

    #[test]
    fn structural_context_duplicates_first_level() {
        let o = figure1b();
        let d500 = o.by_code("D50.0").unwrap();
        // β = 3 exceeds the depth-2 ontology: D50 is duplicated.
        let ctx = o.structural_context(d500, 3);
        let codes: Vec<&str> = ctx.iter().map(|&id| o.concept(id).code.as_str()).collect();
        assert_eq!(codes, vec!["D50", "D50", "D50"]);
    }

    #[test]
    fn structural_context_of_first_level_concept() {
        let o = figure1b();
        let d50 = o.by_code("D50").unwrap();
        let ctx = o.structural_context(d50, 2);
        let codes: Vec<&str> = ctx.iter().map(|&id| o.concept(id).code.as_str()).collect();
        assert_eq!(codes, vec!["D50", "D50"]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn structural_context_zero_beta_panics() {
        let o = figure1b();
        let id = o.by_code("D50.0").unwrap();
        let _ = o.structural_context(id, 0);
    }

    #[test]
    fn depth_and_max_depth() {
        let o = figure1b();
        assert_eq!(o.depth(Ontology::ROOT), 0);
        assert_eq!(o.depth(o.by_code("D50").unwrap()), 1);
        assert_eq!(o.depth(o.by_code("D50.0").unwrap()), 2);
        assert_eq!(o.max_depth(), 2);
    }

    #[test]
    fn ancestors_exclude_root() {
        let o = figure1b();
        let anc = o.ancestors(o.by_code("N18.5").unwrap());
        assert_eq!(anc.len(), 1);
        assert_eq!(o.concept(anc[0]).code, "N18");
        assert!(o.ancestors(o.by_code("N18").unwrap()).is_empty());
    }

    #[test]
    fn counts() {
        let o = figure1b();
        assert_eq!(o.num_concepts(), 11);
        assert_eq!(o.fine_grained().len(), 7);
        assert!(!o.is_empty());
    }

    #[test]
    fn by_code_lookup() {
        let o = figure1b();
        assert!(o.by_code("R10.9").is_some());
        assert!(o.by_code("Z99").is_none());
    }
}
