//! Validated construction of [`Ontology`] values.

use crate::concept::{Concept, ConceptId};
use crate::ontology::Ontology;
use std::collections::HashMap;

/// Errors detected when finalising an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two concepts share an external code.
    DuplicateCode(String),
    /// A concept has an empty canonical description.
    EmptyDescription(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateCode(c) => write!(f, "duplicate concept code {c:?}"),
            Self::EmptyDescription(c) => {
                write!(f, "concept {c:?} has an empty canonical description")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental, index-based ontology builder.
///
/// Because children can only attach to already-created parents, the
/// resulting structure is a tree by construction — cycles are impossible —
/// so [`OntologyBuilder::build`] only needs to validate codes and
/// descriptions.
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    concepts: Vec<Concept>,
    parent: Vec<Option<ConceptId>>,
    children: Vec<Vec<ConceptId>>,
}

impl OntologyBuilder {
    /// Creates a builder holding only the synthetic root.
    pub fn new() -> Self {
        let mut b = Self {
            concepts: Vec::new(),
            parent: Vec::new(),
            children: Vec::new(),
        };
        b.concepts.push(Concept::new("ROOT", "root"));
        b.parent.push(None);
        b.children.push(Vec::new());
        b
    }

    fn push(&mut self, parent: ConceptId, concept: Concept) -> ConceptId {
        let id = ConceptId(self.concepts.len() as u32);
        self.concepts.push(concept);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent.index()].push(id);
        id
    }

    /// Adds a first-level concept (an ICD *chapter* or three-character
    /// *category*), child of the synthetic root.
    pub fn add_root_concept(
        &mut self,
        code: impl Into<String>,
        canonical: impl Into<String>,
    ) -> ConceptId {
        self.push(Ontology::ROOT, Concept::new(code, canonical))
    }

    /// Adds a sub-concept of `parent`.
    ///
    /// # Panics
    /// Panics if `parent` has not been created by this builder.
    pub fn add_child(
        &mut self,
        parent: ConceptId,
        code: impl Into<String>,
        canonical: impl Into<String>,
    ) -> ConceptId {
        assert!(
            parent.index() < self.concepts.len(),
            "unknown parent concept {parent}"
        );
        self.push(parent, Concept::new(code, canonical))
    }

    /// Adds an alias to an existing concept (see [`Concept::add_alias`]).
    pub fn add_alias(&mut self, id: ConceptId, alias: impl Into<String>) -> bool {
        self.concepts[id.index()].add_alias(alias)
    }

    /// Number of concepts so far, excluding the root.
    pub fn len(&self) -> usize {
        self.concepts.len() - 1
    }

    /// True if no concepts were added yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates and finalises the ontology.
    pub fn build(self) -> Result<Ontology, BuildError> {
        let mut by_code = HashMap::with_capacity(self.concepts.len());
        for (i, c) in self.concepts.iter().enumerate() {
            if i > 0 {
                if c.canonical.trim().is_empty() {
                    return Err(BuildError::EmptyDescription(c.code.clone()));
                }
                if by_code
                    .insert(c.code.clone(), ConceptId(i as u32))
                    .is_some()
                {
                    return Err(BuildError::DuplicateCode(c.code.clone()));
                }
            }
        }
        Ok(Ontology::from_parts(
            self.concepts,
            self.parent,
            self.children,
            by_code,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_tree() {
        let mut b = OntologyBuilder::new();
        let a = b.add_root_concept("A", "alpha");
        let a1 = b.add_child(a, "A.1", "alpha one");
        b.add_alias(a1, "first alpha");
        assert_eq!(b.len(), 2);
        let o = b.build().unwrap();
        assert_eq!(o.parent(a1), Some(a));
        assert_eq!(o.children(a), &[a1]);
        assert_eq!(o.concept(a1).aliases, vec!["first alpha"]);
    }

    #[test]
    fn duplicate_code_rejected() {
        let mut b = OntologyBuilder::new();
        b.add_root_concept("A", "alpha");
        b.add_root_concept("A", "alpha again");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateCode("A".into())
        );
    }

    #[test]
    fn empty_description_rejected() {
        let mut b = OntologyBuilder::new();
        b.add_root_concept("A", "  ");
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::EmptyDescription(_)
        ));
    }

    #[test]
    fn empty_builder_builds_empty_ontology() {
        let b = OntologyBuilder::new();
        assert!(b.is_empty());
        let o = b.build().unwrap();
        assert!(o.is_empty());
        assert!(o.fine_grained().is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_panics() {
        let mut b = OntologyBuilder::new();
        b.add_child(ConceptId(99), "X", "x");
    }

    #[test]
    fn error_display() {
        let e = BuildError::DuplicateCode("N18".into());
        assert!(e.to_string().contains("N18"));
    }
}
