//! Loading ontologies from flat files.
//!
//! Users with access to the real classifications (ICD-9-CM/ICD-10-CM are
//! freely downloadable; UMLS alias inventories require a licence) can
//! load them from the common tab-separated layout
//!
//! ```text
//! N18<TAB>Chronic kidney disease
//! N18.5<TAB>Chronic kidney disease, stage 5
//! ```
//!
//! Parent/child relationships are inferred from the ICD code structure
//! (`N18.5` under `N18`, `S52.52` under `S52.5`; see
//! [`crate::codes::parent_code`]). A second loader attaches aliases from
//! `code<TAB>alias` lines, turning a UMLS `MRCONSO`-style extract into
//! the training data of §3.

use crate::codes::parent_code;
use crate::concept::ConceptId;
use crate::ontology::Ontology;
use crate::OntologyBuilder;
use std::collections::HashMap;
use std::io::BufRead;

/// Errors raised while loading a TSV ontology.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line without a TAB separator (1-based line number included).
    Malformed(usize),
    /// A dotted code whose chain of parents never reaches a known
    /// three-character category.
    OrphanCode(String),
    /// Ontology validation failed (duplicate codes, empty descriptions).
    Invalid(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "ontology load I/O error: {e}"),
            Self::Malformed(line) => write!(f, "line {line}: expected CODE<TAB>DESCRIPTION"),
            Self::OrphanCode(c) => write!(f, "code {c:?} has no parent in the file"),
            Self::Invalid(m) => write!(f, "invalid ontology: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads `CODE<TAB>DESCRIPTION` lines into an [`Ontology`].
///
/// * Lines starting with `#` and blank lines are skipped.
/// * Codes may appear in any order; parents are resolved by the ICD code
///   structure after all lines are read.
/// * Descriptions are normalised (lower-cased, punctuation stripped).
pub fn load_ontology_tsv<R: BufRead>(reader: R) -> Result<Ontology, LoadError> {
    let mut entries: Vec<(String, String)> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (code, desc) = trimmed
            .split_once('\t')
            .ok_or(LoadError::Malformed(i + 1))?;
        let code = code.trim().to_string();
        let desc = ncl_text::tokenize::normalize(desc);
        if code.is_empty() || desc.is_empty() {
            return Err(LoadError::Malformed(i + 1));
        }
        entries.push((code, desc));
    }

    // Sort shallow-first so parents are created before children
    // regardless of file order (depth = number of characters past the
    // category, which parent_code strips one at a time).
    entries.sort_by_key(|(code, _)| (code.len(), code.clone()));

    let mut builder = OntologyBuilder::new();
    let mut by_code: HashMap<String, ConceptId> = HashMap::new();
    for (code, desc) in &entries {
        let parent = match parent_code(code) {
            None => None,
            Some(p) => Some(
                by_code
                    .get(&p)
                    .copied()
                    .or_else(|| {
                        // Dotted chains may skip levels in sparse files:
                        // climb until a known ancestor is found.
                        let mut cur = parent_code(&p);
                        while let Some(c) = cur {
                            if let Some(&id) = by_code.get(&c) {
                                return Some(id);
                            }
                            cur = parent_code(&c);
                        }
                        None
                    })
                    .ok_or_else(|| LoadError::OrphanCode(code.clone()))?,
            ),
        };
        let id = match parent {
            None => builder.add_root_concept(code.clone(), desc.clone()),
            Some(p) => builder.add_child(p, code.clone(), desc.clone()),
        };
        by_code.insert(code.clone(), id);
    }

    builder
        .build()
        .map_err(|e| LoadError::Invalid(e.to_string()))
}

/// Reads `CODE<TAB>ALIAS` lines and attaches each alias to the matching
/// concept. Returns `(attached, skipped)` counts — aliases of unknown
/// codes are counted as skipped rather than failing, because UMLS
/// extracts routinely cover more codes than one classification file.
pub fn load_aliases_tsv<R: BufRead>(
    reader: R,
    ontology: &mut Ontology,
) -> Result<(usize, usize), LoadError> {
    let mut attached = 0;
    let mut skipped = 0;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (code, alias) = trimmed
            .split_once('\t')
            .ok_or(LoadError::Malformed(i + 1))?;
        let alias = ncl_text::tokenize::normalize(alias);
        match ontology.by_code(code.trim()) {
            Some(id) if !alias.is_empty() => {
                if ontology.concept_mut(id).add_alias(alias) {
                    attached += 1;
                } else {
                    skipped += 1; // duplicate / identity alias
                }
            }
            _ => skipped += 1,
        }
    }
    Ok((attached, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# ICD-10-CM extract
N18\tChronic kidney disease
N18.5\tChronic kidney disease, stage 5
N18.9\tChronic kidney disease, unspecified
S52\tFracture of forearm
S52.5\tFracture of lower end of radius
S52.52\tTorus fracture of lower end of radius
";

    #[test]
    fn loads_hierarchy_from_codes() {
        let o = load_ontology_tsv(SAMPLE.as_bytes()).unwrap();
        assert_eq!(o.num_concepts(), 6);
        let n185 = o.by_code("N18.5").unwrap();
        let n18 = o.by_code("N18").unwrap();
        assert_eq!(o.parent(n185), Some(n18));
        // Deep chain: S52.52 under S52.5 under S52.
        let deep = o.by_code("S52.52").unwrap();
        assert_eq!(o.depth(deep), 3);
        assert!(o.is_fine_grained(deep));
        // Descriptions are normalised.
        assert_eq!(o.concept(n185).canonical, "chronic kidney disease stage 5");
    }

    #[test]
    fn order_independent() {
        let shuffled = "\
N18.5\tCKD stage 5
N18\tCKD
";
        let o = load_ontology_tsv(shuffled.as_bytes()).unwrap();
        let child = o.by_code("N18.5").unwrap();
        assert_eq!(o.parent(child), o.by_code("N18"));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let src = "\n# comment\nA00\tCholera\n\n";
        let o = load_ontology_tsv(src.as_bytes()).unwrap();
        assert_eq!(o.num_concepts(), 1);
    }

    #[test]
    fn sparse_chain_climbs_to_known_ancestor() {
        // S52.521 present without S52.52: attaches to S52.5.
        let src = "S52\tForearm fracture\nS52.5\tLower radius fracture\nS52.521\tGreenstick\n";
        let o = load_ontology_tsv(src.as_bytes()).unwrap();
        let leaf = o.by_code("S52.521").unwrap();
        assert_eq!(o.parent(leaf), o.by_code("S52.5"));
    }

    #[test]
    fn orphan_code_rejected() {
        let err = load_ontology_tsv("N18.5\tCKD stage 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::OrphanCode(_)));
    }

    #[test]
    fn malformed_line_reports_number() {
        let err = load_ontology_tsv("A00\tCholera\nbadline\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn duplicate_code_rejected() {
        let src = "A00\tCholera\nA00\tCholera again\n";
        let err = load_ontology_tsv(src.as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Invalid(_)));
    }

    #[test]
    fn aliases_attach_and_skip() {
        let mut o = load_ontology_tsv(SAMPLE.as_bytes()).unwrap();
        let aliases = "\
N18.5\tCKD stage 5
N18.5\tend stage renal disease
Z99\tunknown code alias
N18.5\tCKD stage 5
";
        let (attached, skipped) = load_aliases_tsv(aliases.as_bytes(), &mut o).unwrap();
        assert_eq!(attached, 2);
        assert_eq!(skipped, 2); // unknown code + duplicate
        let n185 = o.by_code("N18.5").unwrap();
        assert_eq!(o.concept(n185).aliases.len(), 2);
    }
}
