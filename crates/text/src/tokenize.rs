//! Normalisation and tokenisation — the **single** text-splitting path
//! shared by Phase-I indexing ([`crate::tfidf`]) and query-side
//! rewriting (the linker's Eq. 13 path). Keeping both sides on one
//! module is load-bearing: if the index and the query tokenised
//! differently, rewritten query words could miss postings they were
//! rewritten *into*.
//!
//! Footnote 9 of the paper: "we have converted all the words into their
//! lowercases, removed the special characters (e.g., ',' and ';'), and
//! eliminated the duplicate text snippets." Clinical snippets additionally
//! contain constructs like `fe def anemia 2' to menorrhagia` and
//! `hypertension ef 75%`, so the tokenizer keeps alphanumeric runs
//! (including pure numbers like the `5` in `ckd 5`, which the LR baseline's
//! "sharing number" feature relies on) and drops everything else.

/// Splits a snippet into lower-cased alphanumeric tokens.
///
/// A token is a maximal run of ASCII alphanumeric characters; all
/// punctuation and other separators are treated as boundaries and removed.
///
/// ```
/// use ncl_text::tokenize;
/// assert_eq!(tokenize("Chronic kidney disease, stage 5"),
///            vec!["chronic", "kidney", "disease", "stage", "5"]);
/// assert_eq!(tokenize("fe def anemia 2' to menorrhagia"),
///            vec!["fe", "def", "anemia", "2", "to", "menorrhagia"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Normalises a snippet to its canonical single-spaced token form.
///
/// Two snippets that tokenise identically normalise identically, which is
/// how duplicate snippets are "eliminated" (footnote 9).
pub fn normalize(text: &str) -> String {
    tokenize(text).join(" ")
}

/// Returns true if the token is purely numeric (`"5"`, `"75"`).
///
/// Used by the LR⁺ "sharing numbers" feature (§6.1) and the query
/// generator when deciding which words may be abbreviated.
pub fn is_number(token: &str) -> bool {
    !token.is_empty() && token.chars().all(|c| c.is_ascii_digit())
}

/// De-duplicates a list of snippets by normalised form, preserving first
/// occurrence order.
pub fn dedup_snippets<S: AsRef<str>>(snippets: &[S]) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for s in snippets {
        let norm = normalize(s.as_ref());
        if norm.is_empty() {
            continue;
        }
        if seen.insert(norm.clone()) {
            out.push(norm);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(
            tokenize("Iron Deficiency Anemia, Secondary (to) Blood-Loss;"),
            vec![
                "iron",
                "deficiency",
                "anemia",
                "secondary",
                "to",
                "blood",
                "loss"
            ]
        );
    }

    #[test]
    fn keeps_numbers() {
        assert_eq!(tokenize("ckd 5"), vec!["ckd", "5"]);
        assert_eq!(
            tokenize("hypertension ef 75%"),
            vec!["hypertension", "ef", "75"]
        );
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize(" ,;:!?- ").is_empty());
    }

    #[test]
    fn normalize_canonicalises_spacing() {
        assert_eq!(normalize("  Acute   Abdomen !!"), "acute abdomen");
    }

    #[test]
    fn is_number_cases() {
        assert!(is_number("5"));
        assert!(is_number("2024"));
        assert!(!is_number("n18"));
        assert!(!is_number(""));
        assert!(!is_number("5a"));
    }

    #[test]
    fn dedup_preserves_order_and_drops_dupes() {
        let snippets = ["Acute abdomen", "acute ABDOMEN!", "scurvy", "Scurvy"];
        assert_eq!(dedup_snippets(&snippets), vec!["acute abdomen", "scurvy"]);
    }

    #[test]
    fn dedup_drops_empty() {
        let snippets = ["--", "pain"];
        assert_eq!(dedup_snippets(&snippets), vec!["pain"]);
    }

    proptest! {
        /// Tokenising the normalised form reproduces the same tokens.
        #[test]
        fn normalize_is_idempotent(s in "[ -~]{0,64}") {
            let once = normalize(&s);
            let twice = normalize(&once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn tokens_are_lowercase_alnum(s in "[ -~]{0,64}") {
            for tok in tokenize(&s) {
                prop_assert!(!tok.is_empty());
                prop_assert!(tok.chars().all(|c| c.is_ascii_alphanumeric()
                    && !c.is_ascii_uppercase()));
            }
        }
    }
}
