#![warn(missing_docs)]

//! # ncl-text
//!
//! Text-processing substrate for the NCL reproduction of *Fine-grained
//! Concept Linking using Neural Networks in Healthcare* (Dai et al.,
//! SIGMOD 2018).
//!
//! The paper normalises all snippets by lower-casing, stripping special
//! characters and de-duplicating (§6.1, footnote 9); retrieves candidate
//! concepts with a TF-IDF cosine keyword matcher (§5 Phase I); rewrites
//! out-of-vocabulary query words using edit distance as a textual fallback
//! (Eq. 13 and surrounding text); and the LR⁺ baseline consumes character
//! bigram / prefix / suffix / shared-number / acronym features (§6.1).
//! This crate provides all of those primitives:
//!
//! * [`tokenize`](mod@tokenize) — normalisation and word splitting
//!   (shared by the index side and the query side),
//! * [`vocab`] — word ↔ id interning with special tokens,
//! * [`edit_distance`] — Levenshtein and Damerau–Levenshtein distances,
//! * [`edit_index`] — length/prefix-bucketed nearest-by-edit lookup,
//! * [`ngram`] — character n-gram extraction,
//! * [`tfidf`] — inverted index with TF-IDF cosine top-k retrieval,
//! * [`abbrev`] — abbreviation/acronym generation and matching rules.

pub mod abbrev;
pub mod edit_distance;
pub mod edit_index;
pub mod ngram;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use tokenize::tokenize;
pub use vocab::{Vocab, WordId};
