//! Levenshtein and Damerau–Levenshtein edit distances.
//!
//! Section 5 Phase I: when an out-of-vocabulary query word (e.g. the typo
//! `neuropaty`) is not even in the embedding vocabulary `Ω'`, NCL "will
//! first look for its textually similar word in Ω' (e.g., using
//! edit-distance)". The Damerau variant additionally counts adjacent
//! transpositions as a single edit, which matches the dominant class of
//! clinical typos.

/// Classic Levenshtein distance (insertions, deletions, substitutions),
/// computed over Unicode scalar values with a two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Damerau–Levenshtein distance (restricted: adjacent transpositions count
/// as one edit and substrings are not edited twice).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Edit similarity in `[0, 1]`: `1 − dist / max_len`, using the Damerau
/// variant. Two empty strings are maximally similar.
pub fn edit_similarity(a: &str, b: &str) -> f32 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f32 / max_len as f32
}

/// Finds the candidate with the smallest Damerau–Levenshtein distance to
/// `word`, subject to `max_dist`. Ties break to the earlier candidate.
pub fn nearest_by_edit<'a, I>(word: &str, candidates: I, max_dist: usize) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut best: Option<(&'a str, usize)> = None;
    for cand in candidates {
        let d = damerau_levenshtein(word, cand);
        if d <= max_dist && best.is_none_or(|(_, bd)| d < bd) {
            best = Some((cand, d));
            if d == 0 {
                break;
            }
        }
    }
    best.map(|(c, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_are_zero() {
        assert_eq!(levenshtein("anemia", "anemia"), 0);
        assert_eq!(damerau_levenshtein("anemia", "anemia"), 0);
    }

    #[test]
    fn paper_typo_example() {
        // "neuropaty" is one deletion away from "neuropathy" (§5).
        assert_eq!(levenshtein("neuropaty", "neuropathy"), 1);
    }

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn transposition_counts_once_in_damerau() {
        assert_eq!(levenshtein("caht", "chat"), 2);
        assert_eq!(damerau_levenshtein("caht", "chat"), 1);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn nearest_by_edit_picks_closest() {
        let vocab = ["neuropathy", "nephropathy", "neoplasm"];
        assert_eq!(
            nearest_by_edit("neuropaty", vocab.iter().copied(), 2),
            Some("neuropathy")
        );
        assert_eq!(nearest_by_edit("zzzzz", vocab.iter().copied(), 2), None);
    }

    #[test]
    fn nearest_by_edit_exact_match_short_circuits() {
        let vocab = ["alpha", "beta"];
        assert_eq!(
            nearest_by_edit("beta", vocab.iter().copied(), 3),
            Some("beta")
        );
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    proptest! {
        /// Metric axioms for Levenshtein on short ASCII strings.
        #[test]
        fn symmetry(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn identity_of_indiscernibles(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let d = levenshtein(&a, &b);
            prop_assert_eq!(d == 0, a == b);
        }

        #[test]
        fn triangle_inequality(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn damerau_never_exceeds_levenshtein(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn bounded_by_longer_length(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }
    }
}
