//! Levenshtein and Damerau–Levenshtein edit distances.
//!
//! Section 5 Phase I: when an out-of-vocabulary query word (e.g. the typo
//! `neuropaty`) is not even in the embedding vocabulary `Ω'`, NCL "will
//! first look for its textually similar word in Ω' (e.g., using
//! edit-distance)". The Damerau variant additionally counts adjacent
//! transpositions as a single edit, which matches the dominant class of
//! clinical typos.

/// Classic Levenshtein distance (insertions, deletions, substitutions),
/// computed over Unicode scalar values with a two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Damerau–Levenshtein distance (restricted: adjacent transpositions count
/// as one edit and substrings are not edited twice).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Banded (Ukkonen-style) restricted Damerau–Levenshtein: returns
/// `Some(distance)` when the distance is `<= max_dist`, `None` otherwise,
/// in `O(max_dist · min(n, m))` time instead of `O(n · m)`.
///
/// Cells with `|i − j| > max_dist` cannot lie on any edit path of cost
/// `<= max_dist` (each off-diagonal step costs at least one), so only a
/// `2·max_dist + 1` band around the diagonal is evaluated; everything
/// outside is treated as +∞. When the minimum of a completed band row
/// already exceeds `max_dist` the distance can only grow, so the scan
/// exits early — the property [`crate::edit_index::EditIndex`] exploits by
/// shrinking `max_dist` to the best distance found so far.
pub fn damerau_levenshtein_bounded(a: &str, b: &str, max_dist: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > max_dist {
        return None;
    }
    if n == 0 || m == 0 {
        // Distance is the other length, already known to be within bound.
        return Some(n.max(m));
    }
    // +∞ stand-in far from usize overflow after `+ 1` increments.
    const INF: usize = usize::MAX / 4;
    // Three rolling rows (i-2, i-1, i) over the full width; out-of-band
    // cells stay INF.
    let mut prev2 = vec![INF; m + 1];
    let mut prev = vec![INF; m + 1];
    let mut cur = vec![INF; m + 1];
    for (j, cell) in prev.iter_mut().enumerate().take(m + 1) {
        if j <= max_dist {
            *cell = j;
        }
    }
    for i in 1..=n {
        cur.fill(INF);
        let lo = i.saturating_sub(max_dist).max(1);
        let hi = (i + max_dist).min(m);
        let mut row_min = if i <= max_dist {
            cur[0] = i;
            i
        } else {
            INF
        };
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            cur[j] = best;
            row_min = row_min.min(best);
        }
        if row_min > max_dist {
            return None;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= max_dist).then_some(d)
}

/// Edit similarity in `[0, 1]`: `1 − dist / max_len`, using the Damerau
/// variant. Two empty strings are maximally similar.
pub fn edit_similarity(a: &str, b: &str) -> f32 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f32 / max_len as f32
}

/// Finds the candidate with the smallest Damerau–Levenshtein distance to
/// `word`, subject to `max_dist`. Ties break to the earlier candidate.
pub fn nearest_by_edit<'a, I>(word: &str, candidates: I, max_dist: usize) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut best: Option<(&'a str, usize)> = None;
    for cand in candidates {
        let d = damerau_levenshtein(word, cand);
        if d <= max_dist && best.is_none_or(|(_, bd)| d < bd) {
            best = Some((cand, d));
            if d == 0 {
                break;
            }
        }
    }
    best.map(|(c, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_are_zero() {
        assert_eq!(levenshtein("anemia", "anemia"), 0);
        assert_eq!(damerau_levenshtein("anemia", "anemia"), 0);
    }

    #[test]
    fn paper_typo_example() {
        // "neuropaty" is one deletion away from "neuropathy" (§5).
        assert_eq!(levenshtein("neuropaty", "neuropathy"), 1);
    }

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn transposition_counts_once_in_damerau() {
        assert_eq!(levenshtein("caht", "chat"), 2);
        assert_eq!(damerau_levenshtein("caht", "chat"), 1);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn nearest_by_edit_picks_closest() {
        let vocab = ["neuropathy", "nephropathy", "neoplasm"];
        assert_eq!(
            nearest_by_edit("neuropaty", vocab.iter().copied(), 2),
            Some("neuropathy")
        );
        assert_eq!(nearest_by_edit("zzzzz", vocab.iter().copied(), 2), None);
    }

    #[test]
    fn nearest_by_edit_exact_match_short_circuits() {
        let vocab = ["alpha", "beta"];
        assert_eq!(
            nearest_by_edit("beta", vocab.iter().copied(), 3),
            Some("beta")
        );
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn bounded_matches_full_within_bound() {
        assert_eq!(damerau_levenshtein_bounded("caht", "chat", 2), Some(1));
        assert_eq!(damerau_levenshtein_bounded("anemia", "anemia", 0), Some(0));
        assert_eq!(
            damerau_levenshtein_bounded("neuropaty", "neuropathy", 2),
            Some(1)
        );
    }

    #[test]
    fn bounded_rejects_beyond_bound() {
        // True distance 3 > bound 2.
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein_bounded("kitten", "sitting", 2), None);
        // Length-difference pre-check.
        assert_eq!(damerau_levenshtein_bounded("ab", "abcdef", 2), None);
    }

    #[test]
    fn bounded_handles_empty_sides() {
        assert_eq!(damerau_levenshtein_bounded("", "", 0), Some(0));
        assert_eq!(damerau_levenshtein_bounded("", "ab", 2), Some(2));
        assert_eq!(damerau_levenshtein_bounded("ab", "", 1), None);
    }

    proptest! {
        /// Metric axioms for Levenshtein on short ASCII strings.
        #[test]
        fn symmetry(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn identity_of_indiscernibles(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let d = levenshtein(&a, &b);
            prop_assert_eq!(d == 0, a == b);
        }

        #[test]
        fn triangle_inequality(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn damerau_never_exceeds_levenshtein(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn bounded_by_longer_length(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }

        /// The banded computation agrees with the full matrix everywhere:
        /// `Some(d)` iff the true distance is within the bound.
        #[test]
        fn banded_agrees_with_full(
            a in "[a-e]{0,10}",
            b in "[a-e]{0,10}",
            max_dist in 0usize..5,
        ) {
            let full = damerau_levenshtein(&a, &b);
            let banded = damerau_levenshtein_bounded(&a, &b, max_dist);
            prop_assert_eq!(banded, (full <= max_dist).then_some(full));
        }
    }
}
