//! Word ↔ id interning.
//!
//! COM-AID's softmax output layer is sized `|V| × d` (Eq. 9), so every word
//! that can appear in a decoded query must be interned. The paper maintains
//! two vocabularies (§5 Phase I): `Ω`, the words of the concept
//! descriptions, and the larger `Ω'` that also covers the unlabeled
//! snippets; [`Vocab`] serves both roles.

use std::collections::HashMap;

use ncl_tensor::wire::{Reader, Wire, WireError};

/// Dense integer id of an interned word.
pub type WordId = u32;

/// An interning vocabulary with reserved special tokens.
///
/// Ids `0..3` are reserved: [`Vocab::UNK`] for out-of-vocabulary words,
/// [`Vocab::BOS`]/[`Vocab::EOS`] marking sequence boundaries for the
/// decoder (the chain rule of Eq. 3 needs a terminal symbol so that
/// `p(q|c)` is a proper distribution over variable-length queries), and
/// [`Vocab::PAD`] for fixed-width batches.
#[derive(Debug, Clone)]
pub struct Vocab {
    word_to_id: HashMap<String, WordId>,
    id_to_word: Vec<String>,
}

impl Vocab {
    /// Unknown-word token id.
    pub const UNK: WordId = 0;
    /// Beginning-of-sequence token id.
    pub const BOS: WordId = 1;
    /// End-of-sequence token id.
    pub const EOS: WordId = 2;
    /// Padding token id.
    pub const PAD: WordId = 3;

    /// Creates a vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let specials = ["<unk>", "<s>", "</s>", "<pad>"];
        let mut v = Self {
            word_to_id: HashMap::new(),
            id_to_word: Vec::new(),
        };
        for s in specials {
            let id = v.id_to_word.len() as WordId;
            v.word_to_id.insert(s.to_string(), id);
            v.id_to_word.push(s.to_string());
        }
        v
    }

    /// Interns `word`, returning its id (existing or fresh).
    pub fn add(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.word_to_id.get(word) {
            return id;
        }
        let id = self.id_to_word.len() as WordId;
        self.word_to_id.insert(word.to_string(), id);
        self.id_to_word.push(word.to_string());
        id
    }

    /// Interns every token of an iterator.
    pub fn add_all<'a, I: IntoIterator<Item = &'a str>>(&mut self, words: I) {
        for w in words {
            self.add(w);
        }
    }

    /// Looks a word up without interning.
    pub fn get(&self, word: &str) -> Option<WordId> {
        self.word_to_id.get(word).copied()
    }

    /// Looks a word up, falling back to [`Vocab::UNK`].
    pub fn get_or_unk(&self, word: &str) -> WordId {
        self.get(word).unwrap_or(Self::UNK)
    }

    /// Returns the word for an id, if in range.
    pub fn word(&self, id: WordId) -> Option<&str> {
        self.id_to_word.get(id as usize).map(|s| s.as_str())
    }

    /// Total number of entries, including the four special tokens.
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// Whether only special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.len() <= 4
    }

    /// Whether `word` is interned.
    pub fn contains(&self, word: &str) -> bool {
        self.word_to_id.contains_key(word)
    }

    /// Encodes a token slice to ids, mapping unknown words to `UNK`.
    pub fn encode(&self, tokens: &[String]) -> Vec<WordId> {
        tokens.iter().map(|t| self.get_or_unk(t)).collect()
    }

    /// Decodes ids back to words (unknown ids render as `<unk>`).
    pub fn decode(&self, ids: &[WordId]) -> Vec<String> {
        ids.iter()
            .map(|&id| self.word(id).unwrap_or("<unk>").to_string())
            .collect()
    }

    /// Iterates over `(id, word)` pairs of the *regular* (non-special)
    /// entries.
    pub fn iter_words(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.id_to_word
            .iter()
            .enumerate()
            .skip(4)
            .map(|(i, w)| (i as WordId, w.as_str()))
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Wire for Vocab {
    /// Only `id_to_word` is written; the reverse map is rebuilt on decode,
    /// which also rejects tables with duplicate words (a duplicate would
    /// silently shadow an id and corrupt every downstream encode).
    fn encode(&self, out: &mut Vec<u8>) {
        self.id_to_word.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id_to_word = Vec::<String>::decode(r)?;
        if id_to_word.len() < 4 {
            return Err(WireError::Invalid(format!(
                "vocab has {} entries, fewer than the 4 reserved specials",
                id_to_word.len()
            )));
        }
        if id_to_word.len() > WordId::MAX as usize {
            return Err(WireError::Invalid("vocab exceeds WordId range".into()));
        }
        let mut word_to_id = HashMap::with_capacity(id_to_word.len());
        for (id, w) in id_to_word.iter().enumerate() {
            if word_to_id.insert(w.clone(), id as WordId).is_some() {
                return Err(WireError::Invalid(format!("duplicate vocab word {w:?}")));
            }
        }
        Ok(Self {
            word_to_id,
            id_to_word,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_are_reserved() {
        let v = Vocab::new();
        assert_eq!(v.len(), 4);
        assert_eq!(v.word(Vocab::UNK), Some("<unk>"));
        assert_eq!(v.word(Vocab::BOS), Some("<s>"));
        assert_eq!(v.word(Vocab::EOS), Some("</s>"));
        assert_eq!(v.word(Vocab::PAD), Some("<pad>"));
        assert!(v.is_empty());
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("anemia");
        let b = v.add("anemia");
        assert_eq!(a, b);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut v = Vocab::new();
        v.add_all(["chronic", "kidney", "disease"]);
        let toks: Vec<String> = ["chronic", "kidney", "disease"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ids = v.encode(&toks);
        assert_eq!(v.decode(&ids), toks);
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let v = Vocab::new();
        assert_eq!(v.get_or_unk("ckd"), Vocab::UNK);
        assert_eq!(v.get("ckd"), None);
    }

    #[test]
    fn iter_words_skips_specials() {
        let mut v = Vocab::new();
        v.add("pain");
        let words: Vec<&str> = v.iter_words().map(|(_, w)| w).collect();
        assert_eq!(words, vec!["pain"]);
    }

    #[test]
    fn wire_round_trip_preserves_ids() {
        let mut v = Vocab::new();
        v.add_all(["chronic", "kidney", "disease"]);
        let mut buf = Vec::new();
        Wire::encode(&v, &mut buf);
        let back = <Vocab as Wire>::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back.len(), v.len());
        assert_eq!(back.get("kidney"), v.get("kidney"));
        assert_eq!(back.word(Vocab::EOS), Some("</s>"));
    }

    #[test]
    fn wire_rejects_duplicate_words() {
        let mut buf = Vec::new();
        vec!["<unk>".to_string(); 5].encode(&mut buf);
        assert!(<Vocab as Wire>::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn out_of_range_id_decodes_to_unk() {
        let v = Vocab::new();
        assert_eq!(v.decode(&[999]), vec!["<unk>".to_string()]);
    }
}
