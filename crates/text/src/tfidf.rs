//! TF-IDF weighted cosine retrieval over an inverted index.
//!
//! Section 5, Phase I: "We generate candidate concepts using keyword
//! search. More specifically, we compute the cosine similarity between each
//! concept and query q with the TF-IDF weighting scheme, and then return
//! the top-k concepts with the largest similarity as the candidates."
//! Appendix B.1 notes that longer queries examine "more postings in the
//! inverted index", so the index is explicitly posting-list based.

use std::collections::HashMap;

/// A document's id within a [`TfIdfIndex`]; callers map it to a concept.
pub type DocId = usize;

/// Inverted index with TF-IDF weights and cosine scoring.
///
/// Documents are token sequences (typically a concept's canonical
/// description, optionally concatenated with its aliases). Scores are the
/// cosine between the TF-IDF vectors of the query and the document.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// term → postings `(doc, tf-idf weight)`.
    postings: HashMap<String, Vec<(DocId, f32)>>,
    /// Per-document L2 norm of its TF-IDF vector.
    doc_norms: Vec<f32>,
    /// term → idf, shared with query weighting.
    idf: HashMap<String, f32>,
    num_docs: usize,
}

impl TfIdfIndex {
    /// Builds the index over `docs`, where each document is a token list.
    pub fn build<S: AsRef<str>>(docs: &[Vec<S>]) -> Self {
        let num_docs = docs.len();
        // Document frequencies.
        let mut df: HashMap<&str, usize> = HashMap::new();
        for doc in docs {
            let mut seen: Vec<&str> = doc.iter().map(|t| t.as_ref()).collect();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        // Smoothed idf, always positive so single-document corpora still
        // retrieve.
        let idf: HashMap<String, f32> = df
            .into_iter()
            .map(|(t, d)| {
                (
                    t.to_string(),
                    ((1.0 + num_docs as f32) / (1.0 + d as f32)).ln() + 1.0,
                )
            })
            .collect();

        let mut postings: HashMap<String, Vec<(DocId, f32)>> = HashMap::new();
        let mut doc_norms = vec![0.0f32; num_docs];
        for (doc_id, doc) in docs.iter().enumerate() {
            let mut tf: HashMap<&str, f32> = HashMap::new();
            for t in doc {
                *tf.entry(t.as_ref()).or_insert(0.0) += 1.0;
            }
            // Sorted-term accumulation keeps `doc_norms` bit-reproducible
            // across index builds (f32 addition is order-sensitive), so
            // identically-seeded pipelines rank identically.
            let mut tf: Vec<(&str, f32)> = tf.into_iter().collect();
            tf.sort_unstable_by(|a, b| a.0.cmp(b.0));
            let mut norm_sq = 0.0f32;
            for (t, f) in tf {
                let w = f * idf[t];
                norm_sq += w * w;
                postings.entry(t.to_string()).or_default().push((doc_id, w));
            }
            doc_norms[doc_id] = norm_sq.sqrt();
        }

        Self {
            postings,
            doc_norms,
            idf,
            num_docs,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.num_docs
    }

    /// Whether the index holds no documents.
    pub fn is_empty(&self) -> bool {
        self.num_docs == 0
    }

    /// Whether `term` occurs in any indexed document — this is the paper's
    /// description vocabulary `Ω` membership test used by query rewriting.
    pub fn contains_term(&self, term: &str) -> bool {
        self.postings.contains_key(term)
    }

    /// Iterator over the indexed vocabulary `Ω`.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(|s| s.as_str())
    }

    /// Number of postings examined by `query` — the cost driver measured
    /// in Figure 11(c)/(d) ("more postings in the inverted index are
    /// examined" as |q| grows).
    pub fn postings_examined<S: AsRef<str>>(&self, query: &[S]) -> usize {
        query
            .iter()
            .filter_map(|t| self.postings.get(t.as_ref()))
            .map(|p| p.len())
            .sum()
    }

    /// Returns the `k` documents with the highest TF-IDF cosine similarity
    /// to `query`, best first. Documents with zero overlap are omitted, so
    /// fewer than `k` results may come back — the sub-linear growth the
    /// paper observes in Figure 11(a)/(b) when "the desired number of
    /// candidate concepts may not be met".
    pub fn top_k<S: AsRef<str>>(&self, query: &[S], k: usize) -> Vec<(DocId, f32)> {
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        // Query TF-IDF weights. Accumulation below runs in sorted-term
        // order: f32 addition is not associative, so summing in hash-map
        // iteration order would make scores (and therefore near-tie
        // rankings at the k boundary) vary from call to call.
        let mut qtf: HashMap<&str, f32> = HashMap::new();
        for t in query {
            *qtf.entry(t.as_ref()).or_insert(0.0) += 1.0;
        }
        let mut qtf: Vec<(&str, f32)> = qtf.into_iter().collect();
        qtf.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut qnorm_sq = 0.0f32;
        let mut scores: HashMap<DocId, f32> = HashMap::new();
        for (t, f) in qtf {
            let Some(idf) = self.idf.get(t) else { continue };
            let qw = f * idf;
            qnorm_sq += qw * qw;
            if let Some(plist) = self.postings.get(t) {
                for &(doc, dw) in plist {
                    *scores.entry(doc).or_insert(0.0) += qw * dw;
                }
            }
        }
        if qnorm_sq <= f32::EPSILON {
            return Vec::new();
        }
        let qnorm = qnorm_sq.sqrt();
        let mut results: Vec<(DocId, f32)> = scores
            .into_iter()
            .map(|(doc, dot)| {
                let dn = self.doc_norms[doc];
                let cos = if dn > f32::EPSILON {
                    dot / (qnorm * dn)
                } else {
                    0.0
                };
                (doc, cos)
            })
            .collect();
        results.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        results.truncate(k);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn index() -> TfIdfIndex {
        let docs: Vec<Vec<String>> = [
            "iron deficiency anemia",                         // 0 (D50)
            "iron deficiency anemia secondary to blood loss", // 1 (D50.0)
            "protein deficiency anemia",                      // 2 (D53.0)
            "scorbutic anemia",                               // 3 (D53.2)
            "chronic kidney disease stage 5",                 // 4 (N18.5)
            "acute abdomen",                                  // 5 (R10.0)
            "unspecified abdominal pain",                     // 6 (R10.9)
        ]
        .iter()
        .map(|s| tokenize(s))
        .collect();
        TfIdfIndex::build(&docs)
    }

    #[test]
    fn exact_description_ranks_first() {
        let idx = index();
        let q = tokenize("acute abdomen");
        let hits = idx.top_k(&q, 3);
        assert_eq!(hits[0].0, 5);
        assert!(hits[0].1 > 0.99);
    }

    #[test]
    fn rare_words_dominate_common_ones() {
        let idx = index();
        // "anemia" appears in four docs; "scorbutic" in one. The rare word
        // should pull doc 3 to the top.
        let hits = idx.top_k(&tokenize("scorbutic anemia condition"), 2);
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    fn no_overlap_returns_empty() {
        let idx = index();
        assert!(idx.top_k(&tokenize("zzz qqq"), 5).is_empty());
    }

    #[test]
    fn k_zero_and_empty_query() {
        let idx = index();
        assert!(idx.top_k(&tokenize("anemia"), 0).is_empty());
        assert!(idx.top_k(&Vec::<String>::new(), 5).is_empty());
    }

    #[test]
    fn fewer_than_k_results_possible() {
        let idx = index();
        let hits = idx.top_k(&tokenize("scorbutic"), 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scores_monotone_nonincreasing() {
        let idx = index();
        let hits = idx.top_k(&tokenize("iron deficiency anemia"), 7);
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn contains_term_reflects_corpus() {
        let idx = index();
        assert!(idx.contains_term("anemia"));
        assert!(!idx.contains_term("ckd"));
    }

    #[test]
    fn postings_examined_grows_with_query_len() {
        let idx = index();
        let short = idx.postings_examined(&tokenize("anemia"));
        let long = idx.postings_examined(&tokenize("anemia iron deficiency"));
        assert!(long > short);
        assert_eq!(idx.postings_examined(&tokenize("zzz")), 0);
    }

    #[test]
    fn empty_index() {
        let idx = TfIdfIndex::build(&Vec::<Vec<String>>::new());
        assert!(idx.is_empty());
        assert!(idx.top_k(&tokenize("anemia"), 3).is_empty());
    }

    #[test]
    fn cosine_scores_bounded() {
        let idx = index();
        for (_, s) in idx.top_k(&tokenize("iron deficiency anemia secondary"), 7) {
            assert!((0.0..=1.0 + 1e-5).contains(&s));
        }
    }
}
