//! TF-IDF weighted cosine retrieval over an inverted index.
//!
//! Section 5, Phase I: "We generate candidate concepts using keyword
//! search. More specifically, we compute the cosine similarity between each
//! concept and query q with the TF-IDF weighting scheme, and then return
//! the top-k concepts with the largest similarity as the candidates."
//! Appendix B.1 notes that longer queries examine "more postings in the
//! inverted index", so the index is explicitly posting-list based.
//!
//! ## Engine layout
//!
//! Terms are interned to dense [`TermId`]s (assigned in lexicographic
//! order, so scoring is bit-reproducible across builds) and postings live
//! in one CSR-style flat arena: `offsets[tid]..offsets[tid + 1]` delimits
//! a term's doc-sorted `(doc, impact)` pairs in two parallel arrays. The
//! document L2 norm is folded into each posting at build time
//! (`impact = tfidf_weight / doc_norm`), so online scoring is
//! `cosine(q, d) = (Σ_t qw_t · impact_{t,d}) / ‖q‖` — one multiply-add
//! per posting, no per-document norm lookup.
//!
//! ## Exact MaxScore pruning
//!
//! [`TfIdfIndex::top_k`] runs a document-at-a-time MaxScore scan: query
//! terms are ordered by their score ceiling `qw_t · max_impact_t`, a
//! bounded min-heap tracks the current top-k, and terms whose remaining
//! ceiling cannot reach the heap threshold become *non-essential* — their
//! postings are only probed for documents already surfaced by the
//! essential terms. Results are **bit-identical** to
//! [`TfIdfIndex::top_k_exhaustive`] (see `proptests`): pruning decisions
//! compare an f64 upper bound inflated by an explicit rounding margin
//! against the threshold *strictly*, so no document that could enter the
//! top-k (including ties at the k boundary) is ever skipped.

use std::collections::HashMap;

/// A document's id within a [`TfIdfIndex`]; callers map it to a concept.
pub type DocId = usize;

/// A dense interned term id (lexicographic rank of the term).
pub type TermId = u32;

/// Counters describing how one retrieval (and its surrounding query
/// rewrite, when driven through a linker) spent its work — the cost
/// model of Figure 11(c)/(d), where time grows as "more postings in the
/// inverted index are examined".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Postings the engine actually read (scored or stepped over during
    /// a seek).
    pub postings_examined: usize,
    /// Postings whose contribution was accumulated into a score.
    pub postings_scored: usize,
    /// Postings in the query's lists that pruning skipped wholesale.
    pub postings_pruned: usize,
    /// Documents fully scored.
    pub docs_scored: usize,
    /// Documents abandoned early because their score ceiling fell below
    /// the heap threshold.
    pub docs_pruned: usize,
    /// Evictions from the bounded top-k heap.
    pub heap_evictions: usize,
    /// Out-of-vocabulary tokens whose rewrite was served from the
    /// per-linker memo (filled by the linking layer, not the index).
    pub rewrite_cache_hits: usize,
    /// Out-of-vocabulary tokens whose rewrite had to be computed
    /// (filled by the linking layer, not the index).
    pub rewrite_cache_misses: usize,
}

impl RetrievalStats {
    /// Field-wise accumulation (linker-level stats absorb index-level
    /// stats; benchmark sweeps absorb per-query stats).
    pub fn merge(&mut self, other: &RetrievalStats) {
        self.postings_examined += other.postings_examined;
        self.postings_scored += other.postings_scored;
        self.postings_pruned += other.postings_pruned;
        self.docs_scored += other.docs_scored;
        self.docs_pruned += other.docs_pruned;
        self.heap_evictions += other.heap_evictions;
        self.rewrite_cache_hits += other.rewrite_cache_hits;
        self.rewrite_cache_misses += other.rewrite_cache_misses;
    }
}

/// Inverted index with TF-IDF weights and cosine scoring.
///
/// Documents are token sequences (typically a concept's canonical
/// description, optionally concatenated with its aliases). Scores are the
/// cosine between the TF-IDF vectors of the query and the document.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// term → dense id (ids are lexicographic ranks).
    term_ids: HashMap<String, TermId>,
    /// id → term.
    terms: Vec<String>,
    /// Per-term smoothed idf, shared with query weighting.
    idf: Vec<f32>,
    /// CSR offsets: term `t`'s postings live at `offsets[t]..offsets[t+1]`.
    offsets: Vec<usize>,
    /// Posting doc ids, ascending within each term's slice.
    posting_docs: Vec<u32>,
    /// Norm-folded impacts: `tf·idf / doc_norm`, parallel to
    /// `posting_docs`.
    posting_impacts: Vec<f32>,
    /// Per-term maximum impact — the MaxScore upper bound.
    max_impact: Vec<f32>,
    num_docs: usize,
}

/// One query term resolved against the index, ready for scoring.
struct QueryTerm {
    tid: TermId,
    /// Query-side TF-IDF weight.
    qw: f32,
    /// Score ceiling of one posting of this term: `qw · max_impact`.
    bound: f64,
}

/// Bounded worst-first heap entry: the binary max-heap's top is the
/// *worst* of the current top-k under the result ordering
/// (score descending, doc ascending).
#[derive(Debug, Clone, Copy, PartialEq)]
struct WorstFirst {
    score: f32,
    doc: u32,
}

impl Eq for WorstFirst {}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Greater = worse: lower score first, then higher doc id. Scores
        // are finite and non-negative, so total_cmp is numeric order.
        other
            .score
            .total_cmp(&self.score)
            .then(self.doc.cmp(&other.doc))
    }
}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TfIdfIndex {
    /// Builds the index over `docs`, where each document is a token list.
    pub fn build<S: AsRef<str>>(docs: &[Vec<S>]) -> Self {
        let num_docs = docs.len();
        // Document frequencies.
        let mut df: HashMap<&str, usize> = HashMap::new();
        for doc in docs {
            let mut seen: Vec<&str> = doc.iter().map(|t| t.as_ref()).collect();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *df.entry(t).or_insert(0) += 1;
            }
        }

        // Intern terms in lexicographic order so ids (and therefore every
        // downstream accumulation order) are a pure function of the
        // vocabulary, never of hash-map iteration order.
        let mut terms: Vec<String> = df.keys().map(|t| t.to_string()).collect();
        terms.sort_unstable();
        let term_ids: HashMap<String, TermId> = terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as TermId))
            .collect();

        // Smoothed idf, always positive so single-document corpora still
        // retrieve.
        let idf: Vec<f32> = terms
            .iter()
            .map(|t| ((1.0 + num_docs as f32) / (1.0 + df[t.as_str()] as f32)).ln() + 1.0)
            .collect();

        // Per-doc (tid, tf) rows, sorted by term id (== lexicographic
        // term order, keeping f32 norm accumulation bit-reproducible).
        let mut doc_rows: Vec<Vec<(TermId, f32)>> = Vec::with_capacity(num_docs);
        let mut counts = vec![0usize; terms.len()];
        for doc in docs {
            let mut tf: HashMap<&str, f32> = HashMap::new();
            for t in doc {
                *tf.entry(t.as_ref()).or_insert(0.0) += 1.0;
            }
            let mut row: Vec<(TermId, f32)> =
                tf.into_iter().map(|(t, f)| (term_ids[t], f)).collect();
            row.sort_unstable_by_key(|&(tid, _)| tid);
            for &(tid, _) in &row {
                counts[tid as usize] += 1;
            }
            doc_rows.push(row);
        }

        let mut offsets = Vec::with_capacity(terms.len() + 1);
        offsets.push(0usize);
        for c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let total = *offsets.last().unwrap();

        // Fill the CSR arena doc-major, so each term's slice comes out
        // doc-sorted without an extra sort.
        let mut cursor: Vec<usize> = offsets[..terms.len()].to_vec();
        let mut posting_docs = vec![0u32; total];
        let mut posting_impacts = vec![0.0f32; total];
        let mut max_impact = vec![0.0f32; terms.len()];
        for (doc_id, row) in doc_rows.iter().enumerate() {
            let mut norm_sq = 0.0f32;
            for &(tid, f) in row {
                let w = f * idf[tid as usize];
                norm_sq += w * w;
            }
            let norm = norm_sq.sqrt();
            for &(tid, f) in row {
                let w = f * idf[tid as usize];
                let impact = if norm > f32::EPSILON { w / norm } else { 0.0 };
                let slot = cursor[tid as usize];
                posting_docs[slot] = doc_id as u32;
                posting_impacts[slot] = impact;
                cursor[tid as usize] = slot + 1;
                let m = &mut max_impact[tid as usize];
                if impact > *m {
                    *m = impact;
                }
            }
        }

        Self {
            term_ids,
            terms,
            idf,
            offsets,
            posting_docs,
            posting_impacts,
            max_impact,
            num_docs,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.num_docs
    }

    /// Whether the index holds no documents.
    pub fn is_empty(&self) -> bool {
        self.num_docs == 0
    }

    /// Number of distinct indexed terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether `term` occurs in any indexed document — this is the paper's
    /// description vocabulary `Ω` membership test used by query rewriting.
    pub fn contains_term(&self, term: &str) -> bool {
        self.term_ids.contains_key(term)
    }

    /// Iterator over the indexed vocabulary `Ω` (lexicographic order).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(|s| s.as_str())
    }

    /// Number of postings a fully exhaustive evaluation of `query` would
    /// read — the cost driver measured in Figure 11(c)/(d) ("more
    /// postings in the inverted index are examined" as |q| grows). The
    /// pruned scan reads fewer; see [`RetrievalStats`].
    pub fn postings_examined<S: AsRef<str>>(&self, query: &[S]) -> usize {
        query
            .iter()
            .filter_map(|t| self.term_ids.get(t.as_ref()))
            .map(|&tid| self.postings_range(tid).len())
            .sum()
    }

    /// The CSR slice bounds of one term.
    fn postings_range(&self, tid: TermId) -> std::ops::Range<usize> {
        self.offsets[tid as usize]..self.offsets[tid as usize + 1]
    }

    /// Resolves `query` into weighted terms ordered by descending score
    /// ceiling (ties by term id), plus the query norm. Both scoring paths
    /// share this, so per-document accumulation order — and therefore
    /// every f32 score bit — is identical between them.
    fn weighted_query_terms<S: AsRef<str>>(&self, query: &[S]) -> (Vec<QueryTerm>, f32) {
        // Query TF accumulation in sorted-term order: f32 addition is not
        // associative, so summing in hash-map iteration order would make
        // the query norm (and near-tie rankings) vary from call to call.
        let mut qtf: HashMap<&str, f32> = HashMap::new();
        for t in query {
            *qtf.entry(t.as_ref()).or_insert(0.0) += 1.0;
        }
        let mut qtf: Vec<(&str, f32)> = qtf.into_iter().collect();
        qtf.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut qnorm_sq = 0.0f32;
        let mut terms = Vec::with_capacity(qtf.len());
        for (t, f) in qtf {
            let Some(&tid) = self.term_ids.get(t) else {
                continue;
            };
            let qw = f * self.idf[tid as usize];
            qnorm_sq += qw * qw;
            terms.push(QueryTerm {
                tid,
                qw,
                bound: qw as f64 * self.max_impact[tid as usize] as f64,
            });
        }
        if qnorm_sq <= f32::EPSILON {
            return (Vec::new(), 0.0);
        }
        terms.sort_unstable_by(|a, b| {
            b.bound
                .partial_cmp(&a.bound)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.tid.cmp(&b.tid))
        });
        (terms, qnorm_sq.sqrt())
    }

    /// Returns the `k` documents with the highest TF-IDF cosine similarity
    /// to `query`, best first. Documents with zero overlap are omitted, so
    /// fewer than `k` results may come back — the sub-linear growth the
    /// paper observes in Figure 11(a)/(b) when "the desired number of
    /// candidate concepts may not be met".
    ///
    /// This is the MaxScore-pruned scan; results are bit-identical to
    /// [`TfIdfIndex::top_k_exhaustive`].
    pub fn top_k<S: AsRef<str>>(&self, query: &[S], k: usize) -> Vec<(DocId, f32)> {
        self.top_k_with_stats(query, k).0
    }

    /// [`TfIdfIndex::top_k`] plus the work counters of the scan.
    pub fn top_k_with_stats<S: AsRef<str>>(
        &self,
        query: &[S],
        k: usize,
    ) -> (Vec<(DocId, f32)>, RetrievalStats) {
        let mut stats = RetrievalStats::default();
        if k == 0 || query.is_empty() {
            return (Vec::new(), stats);
        }
        let (terms, qnorm) = self.weighted_query_terms(query);
        if terms.is_empty() {
            return (Vec::new(), stats);
        }
        let n = terms.len();
        let qnorm_f64 = qnorm as f64;
        // Rounding-safety margin for the pruning bound. A document's f32
        // score is a forward sum of n non-negative contributions (each
        // pointwise ≤ its term's ceiling, because f32 rounding is
        // monotone) followed by one division; relative inflation from
        // rounding is < (n + 2)·ε, so multiplying the exact f64 bound by
        // this margin dominates any achievable f32 score. Pruning
        // compares *strictly* below the threshold, so boundary ties are
        // always fully scored.
        let margin = 1.0 + (n as f64 + 8.0) * f32::EPSILON as f64;
        // suffix_bound[i] = Σ_{j ≥ i} ceiling_j (exact-enough f64 sums).
        let mut suffix_bound = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            suffix_bound[i] = suffix_bound[i + 1] + terms[i].bound;
        }

        // Cursors into the CSR arena, one per query term, in bound order.
        let mut pos: Vec<usize> = Vec::with_capacity(n);
        let mut ends: Vec<usize> = Vec::with_capacity(n);
        let mut total_postings = 0usize;
        for t in &terms {
            let r = self.postings_range(t.tid);
            total_postings += r.len();
            pos.push(r.start);
            ends.push(r.end);
        }
        let starts: Vec<usize> = pos.clone();

        let mut heap: std::collections::BinaryHeap<WorstFirst> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        // Number of leading terms that can still, on their own, lift a
        // fresh document over the heap threshold ("essential" terms).
        // The threshold only rises, so this only shrinks.
        let mut essential = n;
        loop {
            let threshold = if heap.len() == k {
                Some(*heap.peek().expect("non-empty full heap"))
            } else {
                None
            };
            if let Some(worst) = threshold {
                while essential > 0
                    && suffix_bound[essential - 1] * margin / qnorm_f64 < worst.score as f64
                {
                    essential -= 1;
                }
                if essential == 0 {
                    break; // no unseen document can reach the top-k
                }
            }

            // Next candidate: smallest unread doc among essential terms.
            let mut d = u32::MAX;
            for i in 0..essential {
                if pos[i] < ends[i] {
                    d = d.min(self.posting_docs[pos[i]]);
                }
            }
            if d == u32::MAX {
                break; // essential lists exhausted
            }

            // Score doc `d` across all terms in bound order — the same
            // accumulation order as the exhaustive reference. Essential
            // cursors always advance past `d` (progress guarantee); the
            // non-essential tail may abandon the doc early once its
            // ceiling falls below the threshold.
            let mut acc = 0.0f32;
            let mut abandoned = false;
            for i in 0..essential {
                if pos[i] < ends[i] && self.posting_docs[pos[i]] == d {
                    acc += terms[i].qw * self.posting_impacts[pos[i]];
                    pos[i] += 1;
                    stats.postings_scored += 1;
                }
            }
            for i in essential..n {
                if let Some(worst) = threshold {
                    if (acc as f64 + suffix_bound[i]) * margin / qnorm_f64 < worst.score as f64 {
                        abandoned = true;
                        break;
                    }
                }
                pos[i] = seek(&self.posting_docs, pos[i], ends[i], d);
                if pos[i] < ends[i] && self.posting_docs[pos[i]] == d {
                    acc += terms[i].qw * self.posting_impacts[pos[i]];
                    pos[i] += 1;
                    stats.postings_scored += 1;
                }
            }
            if abandoned {
                stats.docs_pruned += 1;
                continue;
            }
            stats.docs_scored += 1;
            let score = acc / qnorm;
            let entry = WorstFirst { score, doc: d };
            if heap.len() < k {
                heap.push(entry);
            } else if entry < *heap.peek().expect("full heap") {
                heap.pop();
                heap.push(entry);
                stats.heap_evictions += 1;
            }
        }

        stats.postings_examined = pos.iter().zip(&starts).map(|(&p, &s)| p - s).sum::<usize>();
        stats.postings_pruned = total_postings.saturating_sub(stats.postings_examined);

        let mut out: Vec<(DocId, f32)> = heap
            .into_iter()
            .map(|e| (e.doc as DocId, e.score))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        (out, stats)
    }

    /// Reference scorer: term-at-a-time accumulation over every posting
    /// of every query term, then a full sort. Bit-identical to
    /// [`TfIdfIndex::top_k`]; kept as the pruning-equivalence oracle and
    /// as the exhaustive baseline of the fig11 benchmark.
    pub fn top_k_exhaustive<S: AsRef<str>>(&self, query: &[S], k: usize) -> Vec<(DocId, f32)> {
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        let (terms, qnorm) = self.weighted_query_terms(query);
        if terms.is_empty() {
            return Vec::new();
        }
        let mut acc = vec![0.0f32; self.num_docs];
        let mut seen = vec![false; self.num_docs];
        let mut touched: Vec<u32> = Vec::new();
        for t in &terms {
            let r = self.postings_range(t.tid);
            for (d, imp) in self.posting_docs[r.clone()]
                .iter()
                .zip(&self.posting_impacts[r])
            {
                let di = *d as usize;
                acc[di] += t.qw * imp;
                if !seen[di] {
                    seen[di] = true;
                    touched.push(*d);
                }
            }
        }
        let mut results: Vec<(DocId, f32)> = touched
            .into_iter()
            .map(|d| (d as DocId, acc[d as usize] / qnorm))
            .collect();
        results.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        results.truncate(k);
        results
    }
}

/// Advances `pos` to the first posting in `[pos, end)` whose doc id is
/// `>= target`: a short linear probe (the common stride between
/// consecutive candidates is small), then galloping + binary search for
/// long skips.
fn seek(docs: &[u32], mut pos: usize, end: usize, target: u32) -> usize {
    for _ in 0..8 {
        if pos >= end || docs[pos] >= target {
            return pos;
        }
        pos += 1;
    }
    let mut step = 8usize;
    let mut lo = pos;
    loop {
        let probe = lo.checked_add(step).filter(|&p| p < end);
        match probe {
            Some(p) if docs[p] < target => {
                lo = p;
                step <<= 1;
            }
            _ => break,
        }
    }
    let hi = (lo + step + 1).min(end);
    lo + docs[lo..hi].partition_point(|&d| d < target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn index() -> TfIdfIndex {
        let docs: Vec<Vec<String>> = [
            "iron deficiency anemia",                         // 0 (D50)
            "iron deficiency anemia secondary to blood loss", // 1 (D50.0)
            "protein deficiency anemia",                      // 2 (D53.0)
            "scorbutic anemia",                               // 3 (D53.2)
            "chronic kidney disease stage 5",                 // 4 (N18.5)
            "acute abdomen",                                  // 5 (R10.0)
            "unspecified abdominal pain",                     // 6 (R10.9)
        ]
        .iter()
        .map(|s| tokenize(s))
        .collect();
        TfIdfIndex::build(&docs)
    }

    #[test]
    fn exact_description_ranks_first() {
        let idx = index();
        let q = tokenize("acute abdomen");
        let hits = idx.top_k(&q, 3);
        assert_eq!(hits[0].0, 5);
        assert!(hits[0].1 > 0.99);
    }

    #[test]
    fn rare_words_dominate_common_ones() {
        let idx = index();
        // "anemia" appears in four docs; "scorbutic" in one. The rare word
        // should pull doc 3 to the top.
        let hits = idx.top_k(&tokenize("scorbutic anemia condition"), 2);
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    fn no_overlap_returns_empty() {
        let idx = index();
        assert!(idx.top_k(&tokenize("zzz qqq"), 5).is_empty());
    }

    #[test]
    fn k_zero_and_empty_query() {
        let idx = index();
        assert!(idx.top_k(&tokenize("anemia"), 0).is_empty());
        assert!(idx.top_k(&Vec::<String>::new(), 5).is_empty());
    }

    #[test]
    fn fewer_than_k_results_possible() {
        let idx = index();
        let hits = idx.top_k(&tokenize("scorbutic"), 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scores_monotone_nonincreasing() {
        let idx = index();
        let hits = idx.top_k(&tokenize("iron deficiency anemia"), 7);
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn contains_term_reflects_corpus() {
        let idx = index();
        assert!(idx.contains_term("anemia"));
        assert!(!idx.contains_term("ckd"));
    }

    #[test]
    fn postings_examined_grows_with_query_len() {
        let idx = index();
        let short = idx.postings_examined(&tokenize("anemia"));
        let long = idx.postings_examined(&tokenize("anemia iron deficiency"));
        assert!(long > short);
        assert_eq!(idx.postings_examined(&tokenize("zzz")), 0);
    }

    #[test]
    fn empty_index() {
        let idx = TfIdfIndex::build(&Vec::<Vec<String>>::new());
        assert!(idx.is_empty());
        assert!(idx.top_k(&tokenize("anemia"), 3).is_empty());
    }

    #[test]
    fn cosine_scores_bounded() {
        let idx = index();
        for (_, s) in idx.top_k(&tokenize("iron deficiency anemia secondary"), 7) {
            assert!((0.0..=1.0 + 1e-5).contains(&s));
        }
    }

    #[test]
    fn terms_are_interned_in_lexicographic_order() {
        let idx = index();
        let terms: Vec<&str> = idx.terms().collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted);
        assert_eq!(idx.num_terms(), terms.len());
    }

    #[test]
    fn pruned_matches_exhaustive_on_fixture() {
        let idx = index();
        for q in [
            "anemia",
            "iron deficiency anemia",
            "acute abdomen pain",
            "chronic disease stage 5 anemia unspecified",
            "scorbutic",
        ] {
            let toks = tokenize(q);
            for k in [1usize, 2, 3, 7, 20] {
                let pruned = idx.top_k(&toks, k);
                let exhaustive = idx.top_k_exhaustive(&toks, k);
                assert_eq!(pruned.len(), exhaustive.len(), "q={q} k={k}");
                for (a, b) in pruned.iter().zip(&exhaustive) {
                    assert_eq!(a.0, b.0, "q={q} k={k}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn stats_account_for_every_posting() {
        let idx = index();
        let q = tokenize("iron deficiency anemia");
        let (_, stats) = idx.top_k_with_stats(&q, 2);
        let total = idx.postings_examined(&q);
        assert_eq!(stats.postings_examined + stats.postings_pruned, total);
        assert!(stats.postings_scored <= stats.postings_examined);
        assert!(stats.docs_scored > 0);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = RetrievalStats {
            postings_examined: 1,
            rewrite_cache_hits: 2,
            ..RetrievalStats::default()
        };
        let b = RetrievalStats {
            postings_examined: 3,
            docs_pruned: 4,
            ..RetrievalStats::default()
        };
        a.merge(&b);
        assert_eq!(a.postings_examined, 4);
        assert_eq!(a.docs_pruned, 4);
        assert_eq!(a.rewrite_cache_hits, 2);
    }

    #[test]
    fn seek_finds_first_at_least_target() {
        let docs: Vec<u32> = (0..400).map(|i| i * 3).collect();
        for target in [0u32, 1, 3, 299, 300, 1197, 5000] {
            let got = seek(&docs, 0, docs.len(), target);
            let want = docs.partition_point(|&d| d < target);
            assert_eq!(got, want, "target {target}");
        }
        // Starting mid-list never moves backwards.
        assert_eq!(seek(&docs, 10, docs.len(), 0), 10);
    }
}

#[cfg(test)]
mod equivalence {
    use super::*;
    use proptest::prelude::*;

    /// Asserts the pruned scan's `(doc, score)` pairs are bit-identical
    /// to the exhaustive reference (scores compared by raw f32 bits).
    fn assert_bit_identical(idx: &TfIdfIndex, query: &[String], k: usize) {
        let (pruned, stats) = idx.top_k_with_stats(query, k);
        let exhaustive = idx.top_k_exhaustive(query, k);
        assert_eq!(pruned.len(), exhaustive.len());
        for (a, b) in pruned.iter().zip(&exhaustive) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert!(stats.postings_examined >= stats.postings_scored);
    }

    // Single-letter words from an 8-word closed vocabulary, so random
    // docs overlap heavily and near-ties at the k boundary are common.
    proptest! {
        /// The MaxScore-pruned scan is bit-identical to the exhaustive
        /// reference across random corpora, queries and k values.
        #[test]
        fn pruned_top_k_equals_exhaustive(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-h]{1}", 0..10), 0..40),
            query in proptest::collection::vec("[a-h]{1}", 0..8),
            k in 0usize..12,
        ) {
            let idx = TfIdfIndex::build(&docs);
            assert_bit_identical(&idx, &query, k);
        }

        /// Tie-heavy regime: many documents share the exact token
        /// multiset, so scores collide exactly and the k boundary cuts
        /// through a tie group — the doc-id tiebreak must agree.
        #[test]
        fn pruned_top_k_equals_exhaustive_under_ties(
            copies in 1usize..12,
            seedq in proptest::collection::vec("[a-h]{1}", 1..5),
            k in 1usize..8,
        ) {
            let base: Vec<Vec<String>> = vec![
                vec!["a".into(), "b".into()],
                vec!["b".into(), "c".into()],
                seedq.clone(),
            ];
            let mut docs = Vec::new();
            for _ in 0..copies {
                docs.extend(base.iter().cloned());
            }
            let idx = TfIdfIndex::build(&docs);
            assert_bit_identical(&idx, &seedq, k);
        }

        /// Larger k extends, never reorders, the result prefix — the
        /// property the linker's candidate sets rely on.
        #[test]
        fn top_k_is_prefix_monotone(
            docs in proptest::collection::vec(
                proptest::collection::vec("[a-h]{1}", 0..10), 0..40),
            query in proptest::collection::vec("[a-h]{1}", 1..6),
            k in 1usize..10,
        ) {
            let idx = TfIdfIndex::build(&docs);
            let small = idx.top_k(&query, k);
            let large = idx.top_k(&query, k + 5);
            prop_assert!(small.len() <= large.len());
            prop_assert_eq!(&large[..small.len()], &small[..]);
        }
    }
}
