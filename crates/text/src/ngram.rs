//! Character n-gram extraction.
//!
//! The LR baseline of Tsuruoka et al. (extended to LR⁺ in §6.1 of the
//! paper) represents a string pair through character-bigram overlap; the
//! pkduck baseline measures token-set similarity. Both consume the n-gram
//! primitives here.

use std::collections::HashMap;

/// Returns the multiset of character `n`-grams of `s` as a count map.
///
/// Strings shorter than `n` contribute a single gram equal to the whole
/// string (so very short clinical tokens like `fe` still produce a
/// signature).
pub fn char_ngrams(s: &str, n: usize) -> HashMap<String, u32> {
    assert!(n > 0, "ngram: n must be positive");
    let chars: Vec<char> = s.chars().collect();
    let mut out = HashMap::new();
    if chars.is_empty() {
        return out;
    }
    if chars.len() < n {
        *out.entry(s.to_string()).or_insert(0) += 1;
        return out;
    }
    for w in chars.windows(n) {
        *out.entry(w.iter().collect()).or_insert(0) += 1;
    }
    out
}

/// Dice coefficient between the n-gram multisets of `a` and `b`:
/// `2·|A ∩ B| / (|A| + |B|)`, in `[0, 1]`.
pub fn ngram_dice(a: &str, b: &str, n: usize) -> f32 {
    let ga = char_ngrams(a, n);
    let gb = char_ngrams(b, n);
    let total: u32 = ga.values().sum::<u32>() + gb.values().sum::<u32>();
    if total == 0 {
        return 0.0;
    }
    let mut inter = 0u32;
    for (g, &ca) in &ga {
        if let Some(&cb) = gb.get(g) {
            inter += ca.min(cb);
        }
    }
    2.0 * inter as f32 / total as f32
}

/// Jaccard similarity between two token sets: `|A ∩ B| / |A ∪ B|`.
pub fn token_jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f32 {
    use std::collections::HashSet;
    let sa: HashSet<&str> = a.iter().map(|s| s.as_ref()).collect();
    let sb: HashSet<&str> = b.iter().map(|s| s.as_ref()).collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f32 / union as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bigrams_of_anemia() {
        let g = char_ngrams("anemia", 2);
        assert_eq!(g.get("an"), Some(&1));
        assert_eq!(g.get("ne"), Some(&1));
        assert_eq!(g.get("mi"), Some(&1));
        assert_eq!(g.values().sum::<u32>(), 5);
    }

    #[test]
    fn repeated_grams_counted() {
        let g = char_ngrams("aaa", 2);
        assert_eq!(g.get("aa"), Some(&2));
    }

    #[test]
    fn short_string_whole_gram() {
        let g = char_ngrams("fe", 3);
        assert_eq!(g.get("fe"), Some(&1));
    }

    #[test]
    fn empty_string_no_grams() {
        assert!(char_ngrams("", 2).is_empty());
    }

    #[test]
    fn dice_identical_is_one() {
        assert!((ngram_dice("anemia", "anemia", 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dice_disjoint_is_zero() {
        assert_eq!(ngram_dice("abc", "xyz", 2), 0.0);
    }

    #[test]
    fn dice_similar_words_high() {
        // The typo pair the paper motivates query rewriting with.
        assert!(ngram_dice("neuropaty", "neuropathy", 2) > 0.7);
        assert!(ngram_dice("neuropaty", "testis", 2) < 0.3);
    }

    #[test]
    fn jaccard_basic() {
        let a = ["iron", "deficiency", "anemia"];
        let b = ["anemia", "iron"];
        assert!((token_jaccard(&a, &b) - 2.0 / 3.0).abs() < 1e-6);
        let empty: [&str; 0] = [];
        assert_eq!(token_jaccard(&empty, &empty), 0.0);
    }

    proptest! {
        #[test]
        fn dice_in_unit_interval(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = ngram_dice(&a, &b, 2);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn dice_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert!((ngram_dice(&a, &b, 2) - ngram_dice(&b, &a, 2)).abs() < 1e-6);
        }

        #[test]
        fn gram_count_is_len_minus_n_plus_one(s in "[a-z]{3,16}") {
            let total: u32 = char_ngrams(&s, 3).values().sum();
            prop_assert_eq!(total as usize, s.len() - 2);
        }
    }
}
