//! Deprecated alias of [`crate::tokenize`](mod@crate::tokenize).
//!
//! The module was renamed when the duplicated tokenisation used by the
//! TF-IDF index and the linker's query rewriting was consolidated into
//! one shared module; this re-export keeps old paths compiling.

pub use crate::tokenize::{dedup_snippets, is_number, normalize, tokenize};
