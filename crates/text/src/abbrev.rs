//! Abbreviation and acronym rules.
//!
//! Clinical snippets abbreviate aggressively — the paper's running examples
//! include `ckd` → *chronic kidney disease*, `dm` → *diabetes mellitus*,
//! `fe def` → *iron deficiency* and `2'` → *secondary*. Two consumers need
//! systematic rules rather than a fixed dictionary:
//!
//! * the pkduck baseline (Tao et al., VLDB 2018) joins strings under a
//!   *prefix-abbreviation* rule set,
//! * the synthetic query generator corrupts canonical descriptions the same
//!   way clinicians do.

/// Returns the acronym of a multi-word phrase: first letter of each
/// non-numeric token (`chronic kidney disease` → `ckd`). Numeric tokens are
/// kept verbatim, matching snippets like `ckd 5`.
pub fn acronym<S: AsRef<str>>(tokens: &[S]) -> String {
    let mut out = String::new();
    for t in tokens {
        let t = t.as_ref();
        if t.chars().all(|c| c.is_ascii_digit()) {
            out.push_str(t);
        } else if let Some(c) = t.chars().next() {
            out.push(c);
        }
    }
    out
}

/// Returns true if `abbr` is a *prefix abbreviation* of `word`: a
/// non-empty prefix at most as long as the word (`def` ⊑ `deficiency`,
/// `chr` ⊑ `chronic`). Single-character prefixes are allowed (pkduck's
/// generation rule), callers may impose stricter minimums.
pub fn is_prefix_abbrev(abbr: &str, word: &str) -> bool {
    !abbr.is_empty() && abbr.len() <= word.len() && word.starts_with(abbr)
}

/// Returns true if `abbr` could abbreviate `word` by *subsequence with
/// matching first letter* — the rule covering vowel-dropped forms such as
/// `dsease` ⊑ `disease` or `hemorrhg` ⊑ `hemorrhage`.
pub fn is_subsequence_abbrev(abbr: &str, word: &str) -> bool {
    if abbr.is_empty() || abbr.len() > word.len() {
        return false;
    }
    let mut wi = word.chars();
    let mut first = true;
    for ac in abbr.chars() {
        let mut found = false;
        for wc in wi.by_ref() {
            if first {
                // First characters must agree, else `bc` would abbreviate
                // `abcd`.
                if wc != ac {
                    return false;
                }
                first = false;
                found = true;
                break;
            }
            if wc == ac {
                found = true;
                break;
            }
        }
        if !found {
            return false;
        }
    }
    true
}

/// Produces the standard abbreviated variants of a single word, shortest
/// first: 2–4 character prefixes and the vowel-dropped form. Words of
/// three characters or fewer abbreviate to themselves only.
pub fn abbreviations(word: &str) -> Vec<String> {
    let n = word.chars().count();
    if n <= 3 {
        return vec![word.to_string()];
    }
    let chars: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    for len in 2..=4.min(n - 1) {
        out.push(chars[..len].iter().collect());
    }
    // Vowel-dropped form keeps the first character and all consonants.
    let dropped: String = chars
        .iter()
        .enumerate()
        .filter(|(i, c)| *i == 0 || !matches!(c, 'a' | 'e' | 'i' | 'o' | 'u'))
        .map(|(_, c)| *c)
        .collect();
    if dropped.len() >= 2 && dropped != *word {
        out.push(dropped);
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn acronym_of_ckd() {
        assert_eq!(acronym(&["chronic", "kidney", "disease"]), "ckd");
    }

    #[test]
    fn acronym_keeps_numbers() {
        assert_eq!(
            acronym(&["chronic", "kidney", "disease", "stage", "5"]),
            "ckds5"
        );
    }

    #[test]
    fn acronym_of_empty() {
        let empty: [&str; 0] = [];
        assert_eq!(acronym(&empty), "");
    }

    #[test]
    fn prefix_abbrev_cases() {
        assert!(is_prefix_abbrev("def", "deficiency"));
        assert!(is_prefix_abbrev("chr", "chronic"));
        assert!(is_prefix_abbrev("deficiency", "deficiency"));
        assert!(!is_prefix_abbrev("", "deficiency"));
        assert!(!is_prefix_abbrev("xyz", "deficiency"));
        assert!(!is_prefix_abbrev("deficiencyy", "deficiency"));
    }

    #[test]
    fn subsequence_abbrev_cases() {
        assert!(is_subsequence_abbrev("dsease", "disease"));
        assert!(is_subsequence_abbrev("hemorrhg", "hemorrhage"));
        assert!(is_subsequence_abbrev("disease", "disease"));
        // First letters must match.
        assert!(!is_subsequence_abbrev("isease", "disease"));
        // Not a subsequence at all.
        assert!(!is_subsequence_abbrev("dx", "disease"));
        assert!(!is_subsequence_abbrev("", "disease"));
    }

    #[test]
    fn abbreviations_of_chronic() {
        let abbrs = abbreviations("chronic");
        assert!(abbrs.contains(&"ch".to_string()));
        assert!(abbrs.contains(&"chr".to_string()));
        assert!(abbrs.contains(&"chrnc".to_string())); // vowel-dropped
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(abbreviations("ckd"), vec!["ckd"]);
        assert_eq!(abbreviations("fe"), vec!["fe"]);
    }

    proptest! {
        #[test]
        fn every_abbreviation_is_recognised(word in "[a-z]{4,12}") {
            for abbr in abbreviations(&word) {
                prop_assert!(
                    is_prefix_abbrev(&abbr, &word) || is_subsequence_abbrev(&abbr, &word),
                    "abbr {} of {} not recognised", abbr, word
                );
            }
        }

        #[test]
        fn prefix_implies_subsequence(word in "[a-z]{1,12}", len in 1usize..6) {
            let abbr: String = word.chars().take(len).collect();
            if is_prefix_abbrev(&abbr, &word) {
                prop_assert!(is_subsequence_abbrev(&abbr, &word));
            }
        }
    }
}
