//! Bucketed nearest-word-by-edit-distance lookup.
//!
//! The paper's Phase-I query rewrite falls back to "its textually similar
//! word in Ω' (e.g., using edit-distance)" (§5) for out-of-vocabulary
//! tokens. A naive sweep computes a full Damerau–Levenshtein matrix
//! against every vocabulary word — `O(|Ω'| · len²)` per OOV token, the
//! dominant rewrite cost at production vocabulary sizes. [`EditIndex`]
//! makes the sweep sub-linear in practice:
//!
//! * candidates are bucketed by **character length**: a word whose length
//!   differs from the query's by more than `max_dist` can never be within
//!   `max_dist` edits, so whole buckets are skipped without a single DP
//!   cell;
//! * within the eligible lengths, buckets sharing the query's **first
//!   character** are probed before the rest — a pure ordering heuristic
//!   (never an exclusion), which tends to find a near-match early;
//! * every candidate is scored with the banded
//!   [`damerau_levenshtein_bounded`] under a cutoff that **shrinks** to
//!   the best distance seen so far, so most candidates die after a few
//!   band rows.
//!
//! The result is exactly what [`nearest_by_edit`] over the same words in
//! insertion order returns (minimum distance, ties to the earliest
//! inserted word) — verified by the `proptests` module below.
//!
//! [`nearest_by_edit`]: crate::edit_distance::nearest_by_edit

use crate::edit_distance::damerau_levenshtein_bounded;
use std::collections::BTreeMap;

/// Bucket key: (character length, first character; `None` for the empty
/// word). `BTreeMap` keeps probe order deterministic.
type BucketKey = (usize, Option<char>);

/// An immutable index over a word list supporting "closest word within
/// `max_dist` edits" queries, preserving the tie semantics of
/// [`crate::edit_distance::nearest_by_edit`] (earliest inserted word wins
/// among equally close matches).
#[derive(Debug, Clone, Default)]
pub struct EditIndex {
    buckets: BTreeMap<BucketKey, Vec<(u32, String)>>,
    len: usize,
}

impl EditIndex {
    /// Builds the index; insertion order defines tie-breaking priority.
    pub fn new<'a, I>(words: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut buckets: BTreeMap<BucketKey, Vec<(u32, String)>> = BTreeMap::new();
        let mut len = 0usize;
        for (i, w) in words.into_iter().enumerate() {
            let key = (w.chars().count(), w.chars().next());
            buckets
                .entry(key)
                .or_default()
                .push((i as u32, w.to_string()));
            len += 1;
        }
        Self { buckets, len }
    }

    /// Number of indexed words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finds the indexed word with the smallest Damerau–Levenshtein
    /// distance to `word`, subject to `max_dist`; ties break to the
    /// earliest inserted word. Equivalent to calling
    /// [`crate::edit_distance::nearest_by_edit`] with the words in
    /// insertion order.
    pub fn nearest(&self, word: &str, max_dist: usize) -> Option<&str> {
        let qlen = word.chars().count();
        let qfirst = word.chars().next();
        // Exact-match fast path: distance 0 beats everything and the
        // matching string is unique per bucket entry value.
        if let Some(bucket) = self.buckets.get(&(qlen, qfirst)) {
            if let Some((_, w)) = bucket.iter().find(|(_, w)| w == word) {
                return Some(w);
            }
        }
        let lo = qlen.saturating_sub(max_dist);
        let hi = qlen + max_dist;
        // Probe same-first-char buckets before the rest: ordering only —
        // the (distance, insertion index) minimisation below is exact
        // regardless of visit order; an early near-match just tightens
        // the band cutoff sooner.
        let eligible = self
            .buckets
            .range((lo, None)..=(hi, Some(char::MAX)))
            .filter(|((l, _), _)| (lo..=hi).contains(l));
        let (preferred, rest): (Vec<_>, Vec<_>) =
            eligible.partition(|((_, f), _)| *f == qfirst && qfirst.is_some());

        let mut best: Option<(usize, u32, &str)> = None;
        for (_, bucket) in preferred.into_iter().chain(rest) {
            for (idx, cand) in bucket {
                // A candidate only improves on the incumbent if its
                // distance is <= best's (strictly smaller, or equal with
                // an earlier insertion index), so the incumbent distance
                // is a valid cutoff.
                let cutoff = best.map_or(max_dist, |(bd, _, _)| bd.min(max_dist));
                let Some(d) = damerau_levenshtein_bounded(word, cand, cutoff) else {
                    continue;
                };
                let better = match best {
                    None => true,
                    Some((bd, bi, _)) => d < bd || (d == bd && *idx < bi),
                };
                if better {
                    best = Some((d, *idx, cand.as_str()));
                }
            }
        }
        best.map(|(_, _, w)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_closest_like_linear_sweep() {
        let vocab = ["neuropathy", "nephropathy", "neoplasm"];
        let idx = EditIndex::new(vocab.iter().copied());
        assert_eq!(idx.nearest("neuropaty", 2), Some("neuropathy"));
        assert_eq!(idx.nearest("zzzzz", 2), None);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn exact_match_short_circuits() {
        let idx = EditIndex::new(["alpha", "beta"]);
        assert_eq!(idx.nearest("beta", 3), Some("beta"));
    }

    #[test]
    fn ties_break_to_earliest_insertion() {
        // "cat" is distance 1 from both; "cart" was inserted first.
        let idx = EditIndex::new(["cart", "bat"]);
        assert_eq!(idx.nearest("cat", 2), Some("cart"));
        // Reversed insertion order flips the winner.
        let idx = EditIndex::new(["bat", "cart"]);
        assert_eq!(idx.nearest("cat", 2), Some("bat"));
    }

    #[test]
    fn length_buckets_never_exclude_true_matches() {
        // Lengths 3..=7 around a length-5 query with max_dist 2.
        let idx = EditIndex::new(["ab", "abc", "abcde", "abcdefg", "abcdefgh"]);
        assert_eq!(idx.nearest("abcde", 0), Some("abcde"));
        assert_eq!(idx.nearest("abcdx", 2), Some("abcde"));
        // Bound 1 excludes everything for a far query.
        assert_eq!(idx.nearest("zzzzz", 1), None);
    }

    #[test]
    fn empty_index_and_empty_query() {
        let idx = EditIndex::new(std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.nearest("word", 2), None);
        let idx = EditIndex::new(["a", "ab"]);
        assert_eq!(idx.nearest("", 1), Some("a"));
    }
}

#[cfg(test)]
mod equivalence {
    use super::*;
    use crate::edit_distance::nearest_by_edit;
    use proptest::prelude::*;

    proptest! {
        /// The bucketed index returns exactly what the linear
        /// `nearest_by_edit` sweep over the same insertion order returns —
        /// same word, same tie-breaking, across random vocabularies.
        #[test]
        fn index_equals_linear_sweep(
            words in proptest::collection::vec("[a-d]{0,6}", 0..30),
            query in "[a-d]{0,6}",
            max_dist in 0usize..4,
        ) {
            let idx = EditIndex::new(words.iter().map(|s| s.as_str()));
            let linear = nearest_by_edit(&query, words.iter().map(|s| s.as_str()), max_dist);
            prop_assert_eq!(idx.nearest(&query, max_dist), linear);
        }
    }
}
