//! Quickstart: the Figure 1 scenario from the paper.
//!
//! Builds the disease-ontology fragment of Figure 1(b) by hand, attaches
//! UMLS-style aliases, trains NCL end-to-end (CBOW pre-training +
//! COM-AID refinement), and links the paper's five motivating queries:
//!
//! ```text
//! q1  ckd 5                                -> N18.5
//! q2  abdomen pain                         -> R10.9
//! q3  iga nephropathy                      -> N02.8
//! q4  anemia of chronic blood loss         -> D50.0
//! q5  symptomatic anemia from menorrhagia  -> D50.0
//! ```
//!
//! Run with: `cargo run --release --example quickstart`

use ncl::core::{NclConfig, NclPipeline};
use ncl::ontology::OntologyBuilder;
use ncl::text::tokenize;

fn main() {
    // 1. The Figure 1(b) ontology fragment (plus N02/N02.8 for q3).
    let mut b = OntologyBuilder::new();
    let d50 = b.add_root_concept("D50", "iron deficiency anemia");
    let d500 = b.add_child(
        d50,
        "D50.0",
        "iron deficiency anemia secondary to blood loss",
    );
    let d53 = b.add_root_concept("D53", "other nutritional anemias");
    let d530 = b.add_child(d53, "D53.0", "protein deficiency anemia");
    let d532 = b.add_child(d53, "D53.2", "scorbutic anemia");
    let n18 = b.add_root_concept("N18", "chronic kidney disease");
    let n185 = b.add_child(n18, "N18.5", "chronic kidney disease stage 5");
    let n189 = b.add_child(n18, "N18.9", "chronic kidney disease unspecified");
    let r10 = b.add_root_concept("R10", "abdominal and pelvic pain");
    let r100 = b.add_child(r10, "R10.0", "acute abdomen");
    let r109 = b.add_child(r10, "R10.9", "unspecified abdominal pain");
    let n02 = b.add_root_concept("N02", "recurrent and persistent hematuria");
    let n028 = b.add_child(n02, "N02.8", "hematuria with other morphologic changes");

    // 2. UMLS-style aliases (the labeled training data of §3). These are
    //    the kinds of alternative descriptions the paper quotes, e.g.
    //    R10.0 has "acute abdomen", "acute abdominal syndrome",
    //    "pain; abdomen".
    for (id, alias) in [
        (
            d500,
            "iron deficiency anemia secondary to blood loss chronic",
        ),
        (d500, "anemia chronic blood loss"),
        (d500, "chronic blood loss anemia"),
        (d500, "anemia due to menorrhagia"),
        (d530, "protein deficiency anemia"),
        (d530, "amino acid deficiency anemia"),
        (d532, "vitamin c deficiency anemia"),
        (d532, "scurvy anemia"),
        (n185, "ckd stage 5"),
        (n185, "chronic renal failure stage 5"),
        (n185, "end stage kidney disease"),
        (n189, "ckd unspecified"),
        (n189, "chronic renal disease"),
        (r100, "acute abdominal syndrome"),
        (r100, "pain abdomen acute"),
        (r109, "abdomen pain"),
        (r109, "abdominal pain nos"),
        (n028, "iga nephropathy"),
        (n028, "berger disease hematuria"),
    ] {
        b.add_alias(id, alias);
    }
    let ontology = b.build().expect("valid ontology");

    // 3. Unlabeled snippets — accumulated physician notes (§3 source 1).
    let unlabeled: Vec<Vec<String>> = [
        "ckd 5 on dialysis",
        "ckd stage 5 review",
        "chronic kidney disease stage 5 clinic",
        "abdomen pain since morning",
        "acute abdomen pain admitted",
        "iga nephropathy biopsy proven",
        "anemia from menorrhagia",
        "symptomatic anemia today",
        "menorrhagia with anemia of chronic blood loss",
        "iron deficiency anemia noted",
    ]
    .iter()
    .map(|s| tokenize(s))
    .collect();

    // 4. Train NCL: pre-train embeddings, then COM-AID by MLE.
    let mut config = NclConfig::tiny();
    config.comaid.epochs = 60;
    config.comaid.dim = 16;
    config.cbow.dim = 16;
    config.comaid.lr = 0.3;
    println!("training NCL on {} concepts…", ontology.num_concepts());
    let pipeline = NclPipeline::fit(&ontology, &unlabeled, config);
    println!(
        "done: {} labeled pairs, final loss {:.3} (pre-train {:?}, refine {:?})\n",
        pipeline.num_pairs,
        pipeline.report.final_loss(),
        pipeline.pretrain_time,
        pipeline.refine_time
    );

    // 5. Link the five motivating queries of Figure 1(a).
    let linker = pipeline.linker(&ontology);
    let queries = [
        ("ckd 5", "N18.5"),
        ("abdomen pain", "R10.9"),
        ("iga nephropathy", "N02.8"),
        ("anemia of chronic blood loss", "D50.0"),
        ("symptomatic anemia from menorrhagia", "D50.0"),
    ];
    let mut correct = 0;
    for (q, expected) in queries {
        let res = linker.link_text(q);
        let got = res
            .top1()
            .map(|c| ontology.concept(c).code.clone())
            .unwrap_or_else(|| "-".into());
        let mark = if got == expected { "OK " } else { "MISS" };
        correct += usize::from(got == expected);
        println!(
            "[{mark}] {q:40} -> {got:6} (expected {expected}; rewritten: {})",
            res.rewritten.join(" ")
        );
        for (c, lp) in res.ranked.iter().take(3) {
            println!(
                "        {:6} {:40} log p = {lp:8.3}",
                ontology.concept(*c).code,
                ontology.concept(*c).canonical
            );
        }
    }
    println!(
        "\n{correct}/{} of the paper's motivating queries linked correctly",
        queries.len()
    );
}
