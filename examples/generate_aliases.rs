//! Concept → text generation and model persistence.
//!
//! COM-AID is a translation model (§3: it "is capable of translating a
//! concept into an arbitrary query"). This example runs the translation
//! in the *generative* direction: after training, it beam-decodes likely
//! surface forms for each concept — a practical tool for suggesting new
//! aliases to the domain experts of Appendix A — and round-trips the
//! trained model through JSON persistence.
//!
//! Run with: `cargo run --release --example generate_aliases`

use ncl::core::comaid::OntologyIndex;
use ncl::core::{ComAid, NclConfig, NclPipeline};
use ncl::datagen::{Dataset, DatasetConfig, DatasetProfile};

fn main() {
    // 1. Train on a small synthetic workload.
    let ds = Dataset::generate(DatasetConfig {
        profile: DatasetProfile::MimicIii,
        categories: 10,
        aliases_per_concept: 4,
        unlabeled_snippets: 200,
        seed: 23,
    });
    let mut config = NclConfig::tiny();
    config.comaid.dim = 24;
    config.cbow.dim = 24;
    config.comaid.epochs = 30;
    let pipeline = NclPipeline::fit(&ds.ontology, &ds.unlabeled, config);
    println!(
        "trained on {} pairs (final loss {:.3})\n",
        pipeline.num_pairs,
        pipeline.report.final_loss()
    );

    // 2. Generate surface forms for a few concepts.
    let index = OntologyIndex::build(&ds.ontology, pipeline.model.vocab(), 2);
    println!("beam-decoded surface forms (candidate aliases for expert review):");
    for id in ds.ontology.fine_grained().into_iter().take(6) {
        let c = ds.ontology.concept(id);
        println!("\n  {} — {}", c.code, c.canonical);
        for hyp in pipeline.model.generate_beam(&index, id, 8, 3) {
            println!(
                "      {:<44} log p = {:7.2}",
                hyp.text(pipeline.model.vocab()),
                hyp.log_prob
            );
        }
    }

    // 3. Persist and reload; scores must be identical.
    let path = std::env::temp_dir().join("ncl_example_model.json");
    pipeline.model.save_to_path(&path).expect("save model");
    let loaded = ComAid::load_from_path(&path).expect("load model");
    let probe = ds.ontology.fine_grained()[0];
    let q = pipeline.model.encode_text("follow up visit");
    let a = pipeline.model.log_prob_ids(&index, probe, &q);
    let b = loaded.log_prob_ids(&index, probe, &q);
    println!(
        "\npersistence round-trip: score before {a:.6}, after {b:.6} (identical: {})",
        (a - b).abs() < 1e-6
    );
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("model file: {} ({} KiB)", path.display(), bytes / 1024);
    let _ = std::fs::remove_file(&path);
}
