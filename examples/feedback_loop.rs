//! Expert-in-the-loop feedback (Appendix A / the Timon workflow).
//!
//! Trains NCL on a small ontology, runs queries through the feedback
//! controller so uncertain linkings are pooled, simulates a domain
//! expert labeling the pooled batch, retrains COM-AID with the new
//! labels, and shows that the previously-uncertain queries now link
//! correctly — "the concept linking capability of NCL is incrementally
//! enhanced."
//!
//! Run with: `cargo run --release --example feedback_loop`

use ncl::core::feedback::{ExpertLabel, FeedbackConfig, FeedbackController};
use ncl::core::{NclConfig, NclPipeline};
use ncl::ontology::OntologyBuilder;
use ncl::text::tokenize;

fn main() {
    // 1. An ontology where several anemia concepts overlap — the
    //    situation in which NCL becomes uncertain (Figure 9's "breast
    //    for investigation" analogue).
    let mut b = OntologyBuilder::new();
    let d50 = b.add_root_concept("D50", "iron deficiency anemia");
    let d500 = b.add_child(
        d50,
        "D50.0",
        "iron deficiency anemia secondary to blood loss",
    );
    let d509 = b.add_child(d50, "D50.9", "iron deficiency anemia unspecified");
    let d53 = b.add_root_concept("D53", "other nutritional anemias");
    let d530 = b.add_child(d53, "D53.0", "protein deficiency anemia");
    let d532 = b.add_child(d53, "D53.2", "scorbutic anemia");
    let d62 = b.add_root_concept("D62", "acute posthemorrhagic anemia");
    let d620 = b.add_child(d62, "D62.0", "acute blood loss anemia");
    for (id, alias) in [
        (d500, "anemia chronic blood loss"),
        (d500, "chronic hemorrhagic anemia"),
        (d509, "iron def anemia"),
        (d509, "fe deficiency anemia"),
        (d530, "amino acid deficiency anemia"),
        (d532, "vitamin c deficiency anemia"),
        (d532, "scurvy"),
        (d620, "posthemorrhagic anemia acute"),
        (d620, "anemia after bleeding"),
    ] {
        b.add_alias(id, alias);
    }
    let ontology = b.build().unwrap();
    let unlabeled: Vec<Vec<String>> = [
        "anemia after blood loss",
        "scurvy with anemia",
        "fe def anemia follow up",
        "hemorrhagic anemia acute",
        "iron deficiency anemia clinic",
    ]
    .iter()
    .map(|s| tokenize(s))
    .collect();

    let mut config = NclConfig::tiny();
    config.comaid.dim = 16;
    config.cbow.dim = 16;
    config.comaid.epochs = 40;
    config.comaid.lr = 0.3;
    let mut pipeline = NclPipeline::fit(&ontology, &unlabeled, config);

    // 2. The feedback controller with demonstration-friendly thresholds.
    let mut controller = FeedbackController::new(FeedbackConfig {
        loss_threshold: 6.0,
        std_threshold: 0.8,
        review_batch: 3,
        retrain_after: 3,
    });

    // Queries the initial model is unsure about (words it never saw as
    // labels of the intended concepts).
    let tricky = [
        ("hemorrhagic anemia", "D50.0"),
        ("anemia from sudden bleeding", "D62.0"),
        ("vitamin deficiency anemia scurvy", "D53.2"),
    ];

    println!("--- before feedback ---");
    {
        let linker = pipeline.linker(&ontology);
        for (q, want) in tricky {
            let res = linker.link_text(q);
            // Pool under the original wording: that is what the expert
            // sees in Timon and what becomes the new labeled snippet.
            let verdict = controller.observe(&tokenize(q), &res.ranked);
            let got = res
                .top1()
                .map(|c| ontology.concept(c).code.clone())
                .unwrap_or_else(|| "-".into());
            println!(
                "{q:36} -> {got:6} (want {want})  loss {:.2}  std {:.2}  uncertain: {}",
                verdict.top_loss, verdict.std_dev, verdict.uncertain
            );
        }
    }
    println!(
        "\npooled {} uncertain queries (review batch ready: {})",
        controller.pool().len(),
        controller.review_ready()
    );

    // 3. The expert reviews the pooled batch (Figure 9(a)): here the
    //    simulated expert provides the ground truth labels.
    let batch = controller.take_review_batch();
    for pooled in &batch {
        let truth = tricky
            .iter()
            .find(|(q, _)| tokenize(q) == pooled.query)
            .map(|&(_, code)| code);
        if let Some(code) = truth {
            controller.record_label(ExpertLabel {
                concept: ontology.by_code(code).unwrap(),
                query: pooled.query.clone(),
            });
        }
    }
    println!(
        "expert labeled {} queries; retrain ready: {}",
        controller.label_count(),
        controller.retrain_ready()
    );

    // 4. Retrain with the feedback (Appendix A: "COM-AID will be
    //    re-trained by taking into account the newly collected
    //    feedbacks") and re-link.
    let labels = controller.take_labels();
    // The labels also become KB aliases (Figure 9(c): "a new entry is
    // appended to the descriptions").
    let mut enriched = ontology.clone();
    for l in &labels {
        enriched.concept_mut(l.concept).add_alias(l.query.join(" "));
    }
    pipeline.retrain_with_feedback(&enriched, &labels, 25);

    println!("\n--- after feedback retraining ---");
    let linker = pipeline.linker(&enriched);
    let mut fixed = 0;
    for (q, want) in tricky {
        let res = linker.link_text(q);
        let verdict = controller.assess(&res.ranked);
        let got = res
            .top1()
            .map(|c| enriched.concept(c).code.clone())
            .unwrap_or_else(|| "-".into());
        fixed += usize::from(got == want);
        println!(
            "{q:36} -> {got:6} (want {want})  loss {:.2}  uncertain: {}",
            verdict.top_loss, verdict.uncertain
        );
    }
    println!(
        "\n{fixed}/{} previously-uncertain queries now link correctly",
        tricky.len()
    );
}
