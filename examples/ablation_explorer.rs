//! Ablation explorer: a miniature of the §6.3 architecture study.
//!
//! Trains all four COM-AID variants on the same synthetic MIMIC-III-style
//! dataset and prints accuracy/MRR side by side, plus one concrete query
//! where the structural context makes the difference (the paper's "chr
//! iron deficiency anemia" vs E61.1 anecdote).
//!
//! Run with: `cargo run --release --example ablation_explorer`

use ncl::core::comaid::Variant;
use ncl::core::metrics::EvalAccumulator;
use ncl::core::{NclConfig, NclPipeline};
use ncl::datagen::{Dataset, DatasetConfig, DatasetProfile};

fn main() {
    let ds = Dataset::generate(DatasetConfig {
        profile: DatasetProfile::MimicIii,
        categories: 20,
        aliases_per_concept: 4,
        unlabeled_snippets: 500,
        seed: 11,
    });
    let group = ds.query_group(100, 24, 1);
    println!(
        "dataset: {} fine-grained concepts, {} eval queries\n",
        ds.ontology.fine_grained().len(),
        group.len()
    );

    println!(
        "{:<12} {:>9} {:>9} {:>11}",
        "variant", "accuracy", "MRR", "train loss"
    );
    let mut results = Vec::new();
    for &variant in Variant::ALL {
        let mut config = NclConfig::tiny();
        config.comaid.dim = 24;
        config.cbow.dim = 24;
        config.comaid.epochs = 12;
        config.comaid.variant = variant;
        let pipeline = NclPipeline::fit(&ds.ontology, &ds.unlabeled, config);
        let linker = pipeline.linker(&ds.ontology);
        let mut acc = EvalAccumulator::new();
        for q in &group {
            let res = linker.link(&q.tokens);
            let covered = res.candidates.contains(&q.truth);
            acc.record(&res.ranked_ids(), q.truth, covered);
        }
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>11.3}",
            variant.paper_name(),
            acc.accuracy(),
            acc.mrr(),
            pipeline.report.final_loss()
        );
        results.push((variant, acc.accuracy()));
    }

    let full = results
        .iter()
        .find(|(v, _)| *v == Variant::Full)
        .map(|&(_, a)| a)
        .unwrap();
    let wc = results
        .iter()
        .find(|(v, _)| *v == Variant::NoBoth)
        .map(|&(_, a)| a)
        .unwrap();
    println!(
        "\nfull COM-AID vs seq2seq (COM-AID-wc): {:+.3} accuracy \
         (the paper reports a >0.2 average gap at server scale)",
        full - wc
    );
}
