//! Hospital workload: the synthetic `hospital-x` scenario end-to-end.
//!
//! Generates an ICD-10-style ontology with UMLS-style aliases and a
//! physician-note corpus, trains NCL, then evaluates a query group and
//! breaks accuracy down by word-discrepancy class (abbreviation, acronym,
//! synonym, simplification, typo, reorder) — the dimension §6.1's
//! "purposely selected queries" are designed to cover.
//!
//! Run with: `cargo run --release --example hospital_linking`

use ncl::core::metrics::EvalAccumulator;
use ncl::core::{NclConfig, NclPipeline};
use ncl::datagen::{CorruptionClass, Dataset, DatasetConfig, DatasetProfile};
use std::collections::HashMap;

fn main() {
    // 1. Generate the dataset (simulating the NUH diagnosis workload —
    //    the real hospital-x is gated; see DESIGN.md).
    let ds = Dataset::generate(DatasetConfig {
        profile: DatasetProfile::HospitalX,
        categories: 24,
        aliases_per_concept: 4,
        unlabeled_snippets: 600,
        seed: 7,
    });
    println!(
        "dataset: {} concepts ({} fine-grained), {} labeled pairs, {} unlabeled snippets",
        ds.ontology.num_concepts(),
        ds.ontology.fine_grained().len(),
        ds.ontology.num_labeled_pairs(),
        ds.unlabeled.len()
    );

    // 2. Train.
    let mut config = NclConfig::tiny();
    config.comaid.dim = 32;
    config.cbow.dim = 32;
    config.comaid.epochs = 22;
    config.comaid.lr = 0.25;
    let pipeline = NclPipeline::fit(&ds.ontology, &ds.unlabeled, config);
    println!(
        "trained on {} pairs: final loss {:.3}, pre-train {:.2?}, refine {:.2?}\n",
        pipeline.num_pairs,
        pipeline.report.final_loss(),
        pipeline.pretrain_time,
        pipeline.refine_time
    );

    // 3. Evaluate one group and break down by corruption class.
    let linker = pipeline.linker(&ds.ontology);
    let group = ds.query_group(120, 24, 1);
    let mut overall = EvalAccumulator::new();
    let mut per_class: HashMap<CorruptionClass, EvalAccumulator> = HashMap::new();
    for q in &group {
        let res = linker.link(&q.tokens);
        let covered = res.candidates.contains(&q.truth);
        overall.record(&res.ranked_ids(), q.truth, covered);
        per_class
            .entry(q.class)
            .or_default()
            .record(&res.ranked_ids(), q.truth, covered);
    }

    println!(
        "overall: accuracy {:.3}, MRR {:.3}, coverage {:.3} over {} queries\n",
        overall.accuracy(),
        overall.mrr(),
        overall.coverage(),
        overall.len()
    );
    println!("per word-discrepancy class:");
    let mut classes: Vec<_> = per_class.iter().collect();
    classes.sort_by_key(|(c, _)| format!("{c}"));
    for (class, acc) in classes {
        println!(
            "  {class:<15} acc {:.3}  mrr {:.3}  ({} queries)",
            acc.accuracy(),
            acc.mrr(),
            acc.len()
        );
    }

    // 4. Show a few concrete linkings.
    println!("\nsample linkings:");
    for q in group.iter().take(8) {
        let res = linker.link(&q.tokens);
        let got = res
            .top1()
            .map(|c| ds.ontology.concept(c).code.clone())
            .unwrap_or_else(|| "-".into());
        let want = &ds.ontology.concept(q.truth).code;
        let mark = if &got == want { "OK " } else { "MISS" };
        println!(
            "  [{mark}] [{:<14}] {:<45} -> {got} (truth {want}: {})",
            q.class.to_string(),
            q.text(),
            ds.ontology.concept(q.truth).canonical
        );
    }
}
